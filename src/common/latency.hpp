// The one reservoir-sampling latency summary in the project.
//
// serve's per-device LatencyRecorder (model-cycle latencies) and
// net::LoadGen's client-side report (host-millisecond round trips) both
// need the same thing: exact count/mean/max over an unbounded stream
// plus percentile estimates from a bounded, uniform sample. Keeping one
// implementation here (Vitter's Algorithm R over common::Rng, quantiles
// through common::quantiles) keeps every latency figure in the repo on
// one sampling scheme and one percentile interpolation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace raq::common {

class ReservoirSampler {
public:
    explicit ReservoirSampler(std::size_t capacity = 4096,
                              std::uint64_t seed = 0x1a7e9c5ULL)
        : capacity_(std::max<std::size_t>(1, capacity)), rng_(seed) {
        samples_.reserve(capacity_);
    }

    void record(double v) {
        ++count_;
        sum_ += v;
        max_ = std::max(max_, v);
        if (samples_.size() < capacity_) {
            samples_.push_back(v);
            return;
        }
        // Algorithm R: the i-th sample replaces a reservoir slot with
        // probability capacity / i, keeping the reservoir uniform.
        const std::uint64_t j = rng_.next_below(count_);
        if (j < capacity_) samples_[static_cast<std::size_t>(j)] = v;
    }

    /// Exact number of recorded samples (not the reservoir occupancy).
    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
    [[nodiscard]] double mean() const {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    [[nodiscard]] std::size_t reservoir_size() const { return samples_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Percentile estimates off the uniform reservoir — one sort, the
    /// shared common::quantiles interpolation. Returns one value per q.
    [[nodiscard]] std::vector<double> quantiles(const std::vector<double>& qs) const;

private:
    const std::size_t capacity_;
    Rng rng_;
    std::vector<double> samples_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

}  // namespace raq::common
