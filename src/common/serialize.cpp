#include "common/serialize.hpp"

namespace raq::common {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
}

void BinaryWriter::write_u32(std::uint32_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_u64(std::uint64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_f32(float v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void BinaryWriter::write_string(const std::string& s) {
    write_u64(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
    write_u64(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(float)));
}

BinaryReader::BinaryReader(const std::string& path) : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
}

std::uint32_t BinaryReader::read_u32() {
    std::uint32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in_) throw std::runtime_error("BinaryReader: truncated stream (u32)");
    return v;
}

std::uint64_t BinaryReader::read_u64() {
    std::uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in_) throw std::runtime_error("BinaryReader: truncated stream (u64)");
    return v;
}

float BinaryReader::read_f32() {
    float v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!in_) throw std::runtime_error("BinaryReader: truncated stream (f32)");
    return v;
}

std::string BinaryReader::read_string() {
    const auto n = read_u64();
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw std::runtime_error("BinaryReader: truncated stream (string)");
    return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
    const auto n = read_u64();
    std::vector<float> v(n);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(n * sizeof(float)));
    if (!in_) throw std::runtime_error("BinaryReader: truncated stream (f32 vector)");
    return v;
}

}  // namespace raq::common
