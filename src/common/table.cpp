#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace raq::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size())
        throw std::invalid_argument("Table: row width does not match header");
    rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::string Table::fmt(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string Table::pct(double fraction, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string Table::sci(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, value);
    return buf;
}

}  // namespace raq::common
