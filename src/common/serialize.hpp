// Minimal binary serialization for cached trained models.
//
// Format: little-endian, magic + version header, then a stream of tagged
// records written by the caller. Used by nn::ModelCache so the (slow)
// one-time training runs are shared across all benches/examples.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace raq::common {

class BinaryWriter {
public:
    explicit BinaryWriter(const std::string& path);

    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_f32(float v);
    void write_string(const std::string& s);
    void write_f32_vector(const std::vector<float>& v);

    [[nodiscard]] bool good() const { return out_.good(); }

private:
    std::ofstream out_;
};

class BinaryReader {
public:
    explicit BinaryReader(const std::string& path);

    std::uint32_t read_u32();
    std::uint64_t read_u64();
    float read_f32();
    std::string read_string();
    std::vector<float> read_f32_vector();

    [[nodiscard]] bool good() const { return in_.good(); }

private:
    std::ifstream in_;
};

inline constexpr std::uint32_t kSerializeMagic = 0x52415131;  // "RAQ1"

}  // namespace raq::common
