// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// std::mutex and std::lock_guard carry no thread-safety attributes, so
// Clang's analysis cannot see through them. These thin wrappers add the
// attributes and nothing else: common::Mutex is a std::mutex declared
// as a capability, common::MutexLock is the canonical scoped-capability
// locker (with manual unlock()/lock() for unlock-before-notify
// patterns), and common::CondVar waits on a Mutex the caller is
// required — statically — to hold.
//
// Condition waits deliberately take no predicate lambda: the analysis
// treats lambda bodies as separate un-annotated functions, so guarded
// reads inside a predicate would escape checking. Callers write the
// explicit loop instead:
//
//     common::MutexLock lock(mutex_);
//     while (!ready_) cv_.wait(mutex_);   // ready_ is RAQ_GUARDED_BY(mutex_)
//
// which keeps every guarded access inside the annotated scope.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace raq::common {

/// std::mutex as a Clang TSA capability.
class RAQ_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() RAQ_ACQUIRE() { mu_.lock(); }
    void unlock() RAQ_RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() RAQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /// The wrapped std::mutex, for CondVar's adopt-lock bridge. Locking
    /// through it bypasses the analysis — only CondVar should need it.
    [[nodiscard]] std::mutex& native() { return mu_; }

private:
    std::mutex mu_;
};

/// RAII locker over common::Mutex (scoped capability). Supports the
/// unlock-before-notify idiom via unlock(); the destructor releases
/// only if still held.
class RAQ_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) RAQ_ACQUIRE(mu) : mu_(mu), held_(true) {
        mu_.lock();
    }
    ~MutexLock() RAQ_RELEASE() {
        if (held_) mu_.unlock();
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// Early release (then e.g. notify a CondVar without the lock held).
    void unlock() RAQ_RELEASE() {
        mu_.unlock();
        held_ = false;
    }

    /// Re-acquire after an early unlock().
    void lock() RAQ_ACQUIRE() {
        mu_.lock();
        held_ = true;
    }

private:
    Mutex& mu_;
    bool held_;
};

/// Condition variable that waits on a common::Mutex. wait() statically
/// requires the mutex; it is released for the duration of the block and
/// re-held on return, exactly like std::condition_variable::wait.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(Mutex& mu) RAQ_REQUIRES(mu) {
        // Adopt the already-held native mutex for the wait, then hand
        // ownership back so the annotated Mutex stays the owner. The
        // capability is held on entry and on exit, matching REQUIRES.
        std::unique_lock<std::mutex> native_lock(mu.native(), std::adopt_lock);
        cv_.wait(native_lock);
        native_lock.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace raq::common
