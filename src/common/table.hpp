// Fixed-width text table printer used by the benchmark harnesses to emit
// paper-style tables/series on stdout.
#pragma once

#include <string>
#include <vector>

namespace raq::common {

class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    /// Render with aligned columns; includes a separator under the header.
    [[nodiscard]] std::string to_string() const;

    /// Convenience formatting helpers.
    static std::string fmt(double value, int precision = 2);
    static std::string pct(double fraction, int precision = 1);  // 0.23 -> "23.0%"
    static std::string sci(double value, int precision = 2);     // 1.5e-3 -> "1.50e-03"

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace raq::common
