#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace raq::common {

double mean(const std::vector<double>& xs) {
    if (xs.empty()) throw std::invalid_argument("mean: empty input");
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double quantile(std::vector<double> xs, double q) {
    std::sort(xs.begin(), xs.end());
    return quantile_sorted(xs, q);
}

std::vector<double> quantiles(std::vector<double> xs, const std::vector<double>& qs) {
    std::sort(xs.begin(), xs.end());
    std::vector<double> out;
    out.reserve(qs.size());
    for (const double q : qs) out.push_back(quantile_sorted(xs, q));
    return out;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) throw std::invalid_argument("quantile: empty input");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats box_stats(const std::vector<double>& xs) {
    const std::vector<double> qs = quantiles(xs, {0.0, 0.25, 0.5, 0.75, 1.0});
    BoxStats b;
    b.min = qs[0];
    b.q1 = qs[1];
    b.median = qs[2];
    b.q3 = qs[3];
    b.max = qs[4];
    b.mean = mean(xs);
    return b;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
    if (xs.size() != ys.size() || xs.size() < 2)
        throw std::invalid_argument("pearson: need two equal-length series of size >= 2");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& xs) {
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> out(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
        // Average rank for the tie group [i, j] (1-based).
        const double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
        for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
        i = j + 1;
    }
    return out;
}

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
    return pearson(ranks(xs), ranks(ys));
}

}  // namespace raq::common
