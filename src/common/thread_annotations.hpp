// Clang Thread Safety Analysis attribute macros (no-ops off Clang).
//
// These promote the repo's lock discipline from comments to
// compiler-checked contracts: fields carry RAQ_GUARDED_BY(mutex),
// functions carry RAQ_REQUIRES / RAQ_EXCLUDES, and the `clang-analysis`
// CI job builds src/ with `-Wthread-safety -Wthread-safety-beta
// -Werror`, so any mis-locked access anywhere becomes a build error —
// including paths no test executes. Under gcc (the tier-1 toolchain)
// every macro expands to nothing and codegen is identical.
//
// Usage lives in common/mutex.hpp (the annotated Mutex/MutexLock/
// CondVar wrappers) and src/common/README.md (macro reference + the
// fleet-wide lock-order table).
#pragma once

#if defined(__clang__)
#define RAQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RAQ_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (lockable). Example:
///   class RAQ_CAPABILITY("mutex") Mutex { ... };
#define RAQ_CAPABILITY(x) RAQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability (e.g. common::MutexLock).
#define RAQ_SCOPED_CAPABILITY RAQ_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the named capability.
#define RAQ_GUARDED_BY(x) RAQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* is protected by the named capability
/// (the pointer itself is not).
#define RAQ_PT_GUARDED_BY(x) RAQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares lock-ordering edges (deadlock detection; checked under
/// -Wthread-safety-beta). Attach to the mutex acquired first.
#define RAQ_ACQUIRED_BEFORE(...) RAQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RAQ_ACQUIRED_AFTER(...) RAQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must already hold the capability (private *_locked helpers).
#define RAQ_REQUIRES(...) RAQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RAQ_REQUIRES_SHARED(...) \
    RAQ_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define RAQ_ACQUIRE(...) RAQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define RAQ_RELEASE(...) RAQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquire; first argument is the return value
/// that signals success.
#define RAQ_TRY_ACQUIRE(...) RAQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (public API of a locking class;
/// catches self-deadlock by re-entry).
#define RAQ_EXCLUDES(...) RAQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RAQ_RETURN_CAPABILITY(x) RAQ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only with a
/// comment explaining why the discipline holds anyway.
#define RAQ_NO_THREAD_SAFETY_ANALYSIS RAQ_THREAD_ANNOTATION(no_thread_safety_analysis)
