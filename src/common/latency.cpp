#include "common/latency.hpp"

#include "common/stats.hpp"

namespace raq::common {

std::vector<double> ReservoirSampler::quantiles(const std::vector<double>& qs) const {
    if (samples_.empty()) return std::vector<double>(qs.size(), 0.0);
    return common::quantiles(samples_, qs);
}

}  // namespace raq::common
