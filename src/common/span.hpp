// Minimal C++17 stand-in for std::span (the project targets C++17; the
// real std::span is C++20). Non-owning pointer + length view with just
// the surface the netlist/STA/simulation engines need.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>
#include <vector>

namespace raq::common {

template <typename T>
class Span {
public:
    constexpr Span() noexcept = default;
    constexpr Span(T* data, std::size_t size) noexcept : data_(data), size_(size) {}

    /// Views over containers of the (non-const) element type; only valid
    /// for read-only spans (T = const U).
    template <typename U, typename Alloc,
              typename = std::enable_if_t<std::is_same_v<T, const U>>>
    constexpr Span(const std::vector<U, Alloc>& v) noexcept
        : data_(v.data()), size_(v.size()) {}
    constexpr Span(std::initializer_list<std::remove_const_t<T>> il) noexcept
        : data_(il.begin()), size_(il.size()) {}

    [[nodiscard]] constexpr T* data() const noexcept { return data_; }
    [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
    [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] constexpr T& operator[](std::size_t i) const noexcept { return data_[i]; }
    [[nodiscard]] constexpr T* begin() const noexcept { return data_; }
    [[nodiscard]] constexpr T* end() const noexcept { return data_ + size_; }

private:
    T* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace raq::common
