// Synthetic image classification dataset (ImageNet substitute).
//
// Substitution note (DESIGN.md §2): ImageNet and pretrained torchvision
// weights are unavailable offline, and the paper's conclusions rest on
// *relative* accuracy deltas under quantization/error injection across
// architectures — not on ImageNet absolute accuracy. This generator
// produces a 10-class task whose decision boundary needs convolutional
// texture + color + shape features:
//   each class owns a (orientation, spatial frequency, color palette,
//   shape mask) signature; each sample perturbs phase, translation,
//   amplitude and adds pixel noise. Classes are separable but only with
//   enough precision — low bit-width quantization degrades accuracy
//   smoothly, exactly the regime the paper studies.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace raq::data {

struct DatasetConfig {
    int num_classes = 10;
    int image_size = 16;   ///< square RGB images (3 x size x size)
    int train_size = 3000;
    int test_size = 1000;
    std::uint64_t seed = 0xDA7A5E7;
    float noise_stddev = 0.26f;  ///< pixel-wise Gaussian noise
};

class SyntheticDataset {
public:
    explicit SyntheticDataset(const DatasetConfig& config = {});

    [[nodiscard]] const DatasetConfig& config() const { return config_; }

    [[nodiscard]] int train_size() const { return config_.train_size; }
    [[nodiscard]] int test_size() const { return config_.test_size; }

    /// Batch of training images [count, 3, s, s], starting at `first`.
    [[nodiscard]] tensor::Tensor train_batch(int first, int count) const;
    [[nodiscard]] tensor::Tensor test_batch(int first, int count) const;
    [[nodiscard]] const std::vector<int>& train_labels() const { return train_labels_; }
    [[nodiscard]] const std::vector<int>& test_labels() const { return test_labels_; }

    /// A shuffled index order for one training epoch (deterministic in
    /// `epoch` and the dataset seed).
    [[nodiscard]] std::vector<int> epoch_order(int epoch) const;

    /// Gather an arbitrary index set into one batch (for shuffled SGD).
    [[nodiscard]] tensor::Tensor gather_train(const std::vector<int>& indices) const;

private:
    DatasetConfig config_;
    std::vector<float> train_images_;  // flattened [train_size, 3, s, s]
    std::vector<float> test_images_;
    std::vector<int> train_labels_;
    std::vector<int> test_labels_;
};

}  // namespace raq::data
