#include "data/synthetic_dataset.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace raq::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct ClassSignature {
    double orientation;   ///< grating angle
    double frequency;     ///< cycles across the image
    float color[3][2];    ///< per-channel (base, modulation) palette
    int shape;            ///< 0 disc, 1 ring, 2 bar, 3 checker
};

/// Deterministic per-class signatures. Orientations/frequencies are
/// spaced closely enough that classes overlap in individual features and
/// the classifier must combine texture + color + shape — this keeps FP32
/// accuracy below saturation and makes low-bit quantization losses
/// graceful and measurable (the regime of the paper's Table 1).
ClassSignature make_signature(int cls, common::Rng& rng) {
    ClassSignature sig{};
    sig.orientation = (cls % 7) * (kPi / 7.0) + 0.05;
    sig.frequency = 2.6 + 0.9 * (cls % 4) + 0.45 * (cls / 4);
    for (int ch = 0; ch < 3; ++ch) {
        sig.color[ch][0] = 0.30f + 0.35f * static_cast<float>(rng.next_double());
        sig.color[ch][1] = 0.12f + 0.22f * static_cast<float>(rng.next_double());
    }
    sig.shape = cls % 4;
    return sig;
}

float shape_mask(int shape, double u, double v) {
    // u, v in [-1, 1]
    switch (shape) {
        case 0: return (u * u + v * v < 0.55) ? 1.0f : 0.35f;               // disc
        case 1: {
            const double r = std::sqrt(u * u + v * v);
            return (r > 0.35 && r < 0.8) ? 1.0f : 0.35f;                    // ring
        }
        case 2: return (std::abs(u) < 0.33) ? 1.0f : 0.35f;                 // bar
        default: return ((u > 0) == (v > 0)) ? 1.0f : 0.45f;                // checker
    }
}

void render_sample(const ClassSignature& sig, int size, float noise, common::Rng& rng,
                   float* out /* [3, size, size] */) {
    const double phase = rng.next_double() * 2.0 * kPi;
    const double dx = (rng.next_double() - 0.5) * 0.35;
    const double dy = (rng.next_double() - 0.5) * 0.35;
    const double amp = 0.75 + 0.5 * rng.next_double();
    const double cosq = std::cos(sig.orientation);
    const double sinq = std::sin(sig.orientation);
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            const double u = 2.0 * (static_cast<double>(x) / (size - 1)) - 1.0 + dx;
            const double v = 2.0 * (static_cast<double>(y) / (size - 1)) - 1.0 + dy;
            const double t = u * cosq + v * sinq;
            const double grating =
                0.5 + 0.5 * std::sin(2.0 * kPi * sig.frequency * 0.5 * t + phase);
            const float mask = shape_mask(sig.shape, u, v);
            for (int ch = 0; ch < 3; ++ch) {
                const double base = sig.color[ch][0];
                const double mod = sig.color[ch][1] * amp * grating * mask;
                double value = base + mod + noise * rng.next_gaussian();
                if (value < 0.0) value = 0.0;
                if (value > 1.0) value = 1.0;
                out[(static_cast<std::size_t>(ch) * size + y) * size + x] =
                    static_cast<float>(value);
            }
        }
    }
}

}  // namespace

SyntheticDataset::SyntheticDataset(const DatasetConfig& config) : config_(config) {
    if (config_.num_classes < 2 || config_.image_size < 4)
        throw std::invalid_argument("SyntheticDataset: degenerate configuration");
    common::Rng sig_rng(config_.seed);
    std::vector<ClassSignature> signatures;
    signatures.reserve(static_cast<std::size_t>(config_.num_classes));
    for (int c = 0; c < config_.num_classes; ++c)
        signatures.push_back(make_signature(c, sig_rng));

    const std::size_t pixels = 3u * static_cast<std::size_t>(config_.image_size) *
                               static_cast<std::size_t>(config_.image_size);
    auto render_split = [&](int count, std::uint64_t seed, std::vector<float>& images,
                            std::vector<int>& labels) {
        common::Rng rng(seed);
        images.resize(static_cast<std::size_t>(count) * pixels);
        labels.resize(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
            const int cls = i % config_.num_classes;  // balanced classes
            labels[static_cast<std::size_t>(i)] = cls;
            render_sample(signatures[static_cast<std::size_t>(cls)], config_.image_size,
                          config_.noise_stddev, rng,
                          images.data() + static_cast<std::size_t>(i) * pixels);
        }
    };
    render_split(config_.train_size, config_.seed ^ 0x7241AAu, train_images_, train_labels_);
    render_split(config_.test_size, config_.seed ^ 0x7E57BBu, test_images_, test_labels_);
}

tensor::Tensor SyntheticDataset::train_batch(int first, int count) const {
    if (first < 0 || first + count > config_.train_size)
        throw std::out_of_range("SyntheticDataset: train batch out of range");
    const std::size_t pixels = 3u * static_cast<std::size_t>(config_.image_size) *
                               static_cast<std::size_t>(config_.image_size);
    tensor::Tensor batch(
        {count, 3, config_.image_size, config_.image_size});
    std::copy(train_images_.begin() + static_cast<long>(first * pixels),
              train_images_.begin() + static_cast<long>((first + count) * pixels),
              batch.data());
    return batch;
}

tensor::Tensor SyntheticDataset::test_batch(int first, int count) const {
    if (first < 0 || first + count > config_.test_size)
        throw std::out_of_range("SyntheticDataset: test batch out of range");
    const std::size_t pixels = 3u * static_cast<std::size_t>(config_.image_size) *
                               static_cast<std::size_t>(config_.image_size);
    tensor::Tensor batch(
        {count, 3, config_.image_size, config_.image_size});
    std::copy(test_images_.begin() + static_cast<long>(first * pixels),
              test_images_.begin() + static_cast<long>((first + count) * pixels),
              batch.data());
    return batch;
}

std::vector<int> SyntheticDataset::epoch_order(int epoch) const {
    std::vector<int> order(static_cast<std::size_t>(config_.train_size));
    std::iota(order.begin(), order.end(), 0);
    common::Rng rng(config_.seed + 0x9E3779B9u * static_cast<std::uint64_t>(epoch + 1));
    for (std::size_t i = order.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
        std::swap(order[i - 1], order[j]);
    }
    return order;
}

tensor::Tensor SyntheticDataset::gather_train(const std::vector<int>& indices) const {
    const std::size_t pixels = 3u * static_cast<std::size_t>(config_.image_size) *
                               static_cast<std::size_t>(config_.image_size);
    tensor::Tensor batch({static_cast<int>(indices.size()), 3, config_.image_size,
                          config_.image_size});
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const int idx = indices[i];
        if (idx < 0 || idx >= config_.train_size)
            throw std::out_of_range("SyntheticDataset: gather index out of range");
        std::copy(train_images_.begin() + static_cast<long>(idx * static_cast<long>(pixels)),
                  train_images_.begin() +
                      static_cast<long>((idx + 1) * static_cast<long>(pixels)),
                  batch.data() + i * pixels);
    }
    return batch;
}

}  // namespace raq::data
