#include "aging/aging_model.hpp"

#include <cmath>
#include <stdexcept>

namespace raq::aging {

AgingModel::AgingModel(const AgingParams& params) : params_(params) {
    if (params_.eol_years <= 0 || params_.eol_dvth_mv <= 0)
        throw std::invalid_argument("AgingModel: EOL anchors must be positive");
    if (params_.bti_exponent <= 0 || params_.hci_exponent <= 0)
        throw std::invalid_argument("AgingModel: exponents must be positive");
    if (params_.hci_fraction < 0 || params_.hci_fraction >= 1)
        throw std::invalid_argument("AgingModel: hci_fraction must be in [0,1)");
    // Calibrate prefactors so that the two mechanisms sum to the EOL anchor
    // at reference conditions: bti + hci = eol_dvth at t = eol_years.
    bti_prefactor_mv_ = params_.eol_dvth_mv * (1.0 - params_.hci_fraction);
    hci_prefactor_mv_ = params_.eol_dvth_mv * params_.hci_fraction;
}

double AgingModel::dvth_mv(double years) const {
    if (years < 0) throw std::invalid_argument("AgingModel: negative age");
    if (years == 0) return 0.0;
    const double t = years / params_.eol_years;
    // Arrhenius-like acceleration relative to the reference temperature, and
    // stress-time scaling with the duty cycle (relaxation-aware first order).
    const double accel =
        std::exp(params_.temperature_activation *
                 (params_.temperature_c - params_.reference_temperature_c)) *
        params_.duty_cycle;
    const double bti = bti_prefactor_mv_ * std::pow(t * accel, params_.bti_exponent);
    const double hci = hci_prefactor_mv_ * std::pow(t * accel, params_.hci_exponent);
    return bti + hci;
}

double AgingModel::years_for_dvth(double target_mv) const {
    if (target_mv < 0) throw std::invalid_argument("AgingModel: negative ΔVth");
    if (target_mv == 0) return 0.0;
    double lo = 0.0;
    double hi = params_.eol_years;
    while (dvth_mv(hi) < target_mv) {
        hi *= 2.0;
        if (hi > 1e6) throw std::invalid_argument("AgingModel: ΔVth unreachable");
    }
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (dvth_mv(mid) < target_mv)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

}  // namespace raq::aging
