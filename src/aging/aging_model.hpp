// Transistor-aging model: threshold-voltage degradation over lifetime.
//
// Substitution note (see DESIGN.md §2): the paper uses the physics-based
// BTI analysis tool of Parihar et al. [20], calibrated against Intel
// 14 nm FinFET measurements; its output, as consumed by the paper's flow,
// is a single scalar — ΔVth as a function of stress time — anchored at
// ΔVth = 50 mV after a 10-year lifetime [15]. We reproduce that interface
// with the standard reaction–diffusion power-law kinetics
//
//     ΔVth(t) = A · (t / t0)^n        (BTI, dominant term)
//             + A_hci · (t / t0)^m    (optional HCI contribution)
//
// with the exponent n ≈ 1/6 typical for NBTI and the prefactor calibrated
// so that ΔVth(10 years) = 50 mV, exactly the paper's end-of-life anchor.
// Temperature and duty-cycle knobs scale the prefactor (Arrhenius-like
// acceleration), matching the paper's observation that "ΔVth = 20 mV may
// correspond to 1–2 years" under milder operating conditions.
#pragma once

#include <array>
#include <vector>

namespace raq::aging {

struct AgingParams {
    double eol_years = 10.0;     ///< projected lifetime
    double eol_dvth_mv = 50.0;   ///< ΔVth at end of life [15,20]
    double bti_exponent = 1.0 / 6.0;   ///< power-law time exponent (NBTI)
    double hci_fraction = 0.10;  ///< fraction of EOL ΔVth contributed by HCI
    double hci_exponent = 0.45;  ///< HCI grows closer to sqrt(t)
    double temperature_c = 85.0; ///< junction temperature of the stressed MACs
    double reference_temperature_c = 85.0;  ///< temperature the anchor refers to
    double temperature_activation = 0.035;  ///< per-degree-C acceleration factor
    double duty_cycle = 1.0;     ///< fraction of time under stress (NPU MACs: ~1)
};

/// ΔVth(t) model with monotone time<->ΔVth mapping.
class AgingModel {
public:
    AgingModel() : AgingModel(AgingParams{}) {}
    explicit AgingModel(const AgingParams& params);

    /// Threshold-voltage shift after `years` of operation, in millivolts.
    [[nodiscard]] double dvth_mv(double years) const;

    /// Inverse mapping: operating years that produce the given ΔVth.
    /// Solved by bisection (the model is strictly monotone).
    [[nodiscard]] double years_for_dvth(double dvth_mv) const;

    [[nodiscard]] const AgingParams& params() const { return params_; }

    /// The aging levels examined throughout the paper: 0 (fresh) to
    /// 50 mV (10 years) in steps of 10 mV.
    static constexpr std::array<double, 6> standard_levels_mv() {
        return {0.0, 10.0, 20.0, 30.0, 40.0, 50.0};
    }

private:
    AgingParams params_;
    double bti_prefactor_mv_ = 0.0;
    double hci_prefactor_mv_ = 0.0;
};

}  // namespace raq::aging
