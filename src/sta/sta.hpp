// Static timing analysis engine (PrimeTime substitute, DESIGN.md §2).
//
// Arrival times propagate through the topologically ordered netlist with
// a per-cell linear delay model (intrinsic + drive resistance × fanout
// load). Three-valued constant propagation implements case analysis:
// nets that are logically constant under the assignments carry no arrival
// time, and gates whose output is forced by a controlling constant kill
// every downstream path — exactly the mechanism by which zero-padded MAC
// inputs shorten the critical path (paper §4, Fig. 2).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "netlist/netlist.hpp"
#include "sta/case_analysis.hpp"

namespace raq::sta {

inline constexpr double kNoArrival = -std::numeric_limits<double>::infinity();

struct StaResult {
    double critical_path_ps = 0.0;           ///< worst primary-output arrival
    std::vector<double> arrival_ps;          ///< per net (kNoArrival if constant)
    std::vector<cell::Logic> values;         ///< constant-propagation result
    std::vector<netlist::NetId> critical_path;  ///< worst path, PI -> output

    [[nodiscard]] double arrival(netlist::NetId net) const {
        return arrival_ps[static_cast<std::size_t>(net)];
    }
    [[nodiscard]] bool is_constant(netlist::NetId net) const {
        return values[static_cast<std::size_t>(net)] != cell::Logic::X;
    }
};

class Sta {
public:
    /// The reference library supplies pin capacitances for the load model;
    /// aging does not change pin caps, so one Sta instance serves every
    /// aged corner via run(aged_library, ...).
    Sta(const netlist::Netlist& nl, const cell::Library& reference);

    /// Analyze with the given (possibly aged) library and case analysis.
    [[nodiscard]] StaResult run(const cell::Library& lib,
                                const CaseAnalysis& ca = {}) const;

    /// Convenience: critical path delay only.
    [[nodiscard]] double critical_path_ps(const cell::Library& lib,
                                          const CaseAnalysis& ca = {}) const {
        return run(lib, ca).critical_path_ps;
    }

    [[nodiscard]] const netlist::Netlist& netlist() const { return *nl_; }
    [[nodiscard]] double load_ff(netlist::NetId net) const {
        return loads_ff_[static_cast<std::size_t>(net)];
    }

    /// Total leakage power of the design under the given library (nW).
    [[nodiscard]] static double total_leakage_nw(const netlist::Netlist& nl,
                                                 const cell::Library& lib);

private:
    const netlist::Netlist* nl_;
    std::vector<double> loads_ff_;  ///< per-net capacitive load
};

/// Human-readable critical-path report (for examples and debugging).
[[nodiscard]] std::string format_path_report(const netlist::Netlist& nl,
                                             const StaResult& result);

}  // namespace raq::sta
