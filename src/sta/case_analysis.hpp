// PrimeTime-style case analysis: pin assignments of constant logic values
// used during STA. The paper sets the zero-padded input bits of the MAC
// to constant '0' so that only the paths activated by the compressed
// inputs contribute to the reported delay (§6.1(3)).
#pragma once

#include <vector>

#include "cell/cell.hpp"
#include "common/compression.hpp"
#include "netlist/netlist.hpp"

namespace raq::sta {

struct CaseAnalysis {
    std::vector<std::pair<netlist::NetId, cell::Logic>> assignments;

    void set(netlist::NetId net, cell::Logic value) { assignments.emplace_back(net, value); }
    [[nodiscard]] bool empty() const { return assignments.empty(); }
};

/// Build the case analysis for an (α, β, padding) input compression on a
/// multiplier circuit (buses "A","B") or a MAC circuit (buses "A","B","C").
/// For MSB padding the value occupies the low bits (high bits tied to 0);
/// for LSB padding the value is shifted up (low bits tied to 0). The
/// accumulator input C loses α+β bits on the matching side.
[[nodiscard]] CaseAnalysis compression_case(const netlist::Netlist& nl,
                                            const common::Compression& comp);

}  // namespace raq::sta
