#include "sta/case_analysis.hpp"

#include <stdexcept>

namespace raq::sta {

namespace {

void tie_zero_bits(CaseAnalysis& ca, const std::vector<netlist::NetId>& bus, int removed,
                   common::Padding padding) {
    const int width = static_cast<int>(bus.size());
    if (removed < 0 || removed > width)
        throw std::invalid_argument("compression_case: removed bits outside [0, width]");
    if (padding == common::Padding::Msb) {
        for (int i = width - removed; i < width; ++i)
            ca.set(bus[static_cast<std::size_t>(i)], cell::Logic::Zero);
    } else {
        for (int i = 0; i < removed; ++i)
            ca.set(bus[static_cast<std::size_t>(i)], cell::Logic::Zero);
    }
}

}  // namespace

CaseAnalysis compression_case(const netlist::Netlist& nl, const common::Compression& comp) {
    CaseAnalysis ca;
    tie_zero_bits(ca, nl.input_bus("A"), comp.alpha, comp.padding);
    tie_zero_bits(ca, nl.input_bus("B"), comp.beta, comp.padding);
    if (nl.has_bus("C"))
        tie_zero_bits(ca, nl.input_bus("C"), comp.alpha + comp.beta, comp.padding);
    return ca;
}

}  // namespace raq::sta
