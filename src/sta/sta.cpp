#include "sta/sta.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace raq::sta {

Sta::Sta(const netlist::Netlist& nl, const cell::Library& reference) : nl_(&nl) {
    loads_ff_.assign(nl.num_nets(), 0.0);
    for (const auto& gate : nl.gates()) {
        const double pin_cap = reference.spec(gate.type).input_cap_ff;
        for (int i = 0; i < gate.num_inputs(); ++i)
            loads_ff_[static_cast<std::size_t>(gate.inputs[i])] += pin_cap;
    }
    for (netlist::NetId out : nl.primary_outputs())
        loads_ff_[static_cast<std::size_t>(out)] += reference.tech().output_pin_cap_ff;
}

StaResult Sta::run(const cell::Library& lib, const CaseAnalysis& ca) const {
    const auto& nl = *nl_;
    StaResult res;
    res.values.assign(nl.num_nets(), cell::Logic::X);
    res.arrival_ps.assign(nl.num_nets(), kNoArrival);

    if (nl.const_zero_net() != netlist::kNoNet)
        res.values[static_cast<std::size_t>(nl.const_zero_net())] = cell::Logic::Zero;
    if (nl.const_one_net() != netlist::kNoNet)
        res.values[static_cast<std::size_t>(nl.const_one_net())] = cell::Logic::One;

    for (netlist::NetId pi : nl.primary_inputs())
        res.arrival_ps[static_cast<std::size_t>(pi)] = 0.0;

    for (const auto& [net, value] : ca.assignments) {
        if (net < 0 || static_cast<std::size_t>(net) >= nl.num_nets())
            throw std::out_of_range("Sta: case-analysis net out of range");
        res.values[static_cast<std::size_t>(net)] = value;
        if (value != cell::Logic::X)
            res.arrival_ps[static_cast<std::size_t>(net)] = kNoArrival;
    }

    // Worst-input bookkeeping for critical-path extraction.
    std::vector<netlist::NetId> worst_input(nl.num_nets(), netlist::kNoNet);

    for (const auto& gate : nl.gates()) {
        const int n = gate.num_inputs();
        cell::Logic ins[3] = {cell::Logic::X, cell::Logic::X, cell::Logic::X};
        for (int i = 0; i < n; ++i)
            ins[i] = res.values[static_cast<std::size_t>(gate.inputs[i])];
        const cell::Logic out_value =
            cell::eval_logic(gate.type, common::Span<const cell::Logic>(ins, static_cast<std::size_t>(n)));
        const auto out_idx = static_cast<std::size_t>(gate.output);
        res.values[out_idx] = out_value;
        if (out_value != cell::Logic::X) {
            res.arrival_ps[out_idx] = kNoArrival;  // constant: no timing arc
            continue;
        }
        const double delay = lib.cell_delay_ps(gate.type, loads_ff_[out_idx]);
        double worst = kNoArrival;
        netlist::NetId worst_net = netlist::kNoNet;
        for (int i = 0; i < n; ++i) {
            if (ins[i] != cell::Logic::X) continue;  // constant pins have no arc
            const double a = res.arrival_ps[static_cast<std::size_t>(gate.inputs[i])];
            if (a > worst) {
                worst = a;
                worst_net = gate.inputs[i];
            }
        }
        if (worst == kNoArrival) continue;  // only floating inputs (degenerate)
        res.arrival_ps[out_idx] = worst + delay;
        worst_input[out_idx] = worst_net;
    }

    // Worst primary output and path trace-back.
    netlist::NetId worst_out = netlist::kNoNet;
    double worst_arrival = kNoArrival;
    for (netlist::NetId out : nl.primary_outputs()) {
        const double a = res.arrival_ps[static_cast<std::size_t>(out)];
        if (a > worst_arrival) {
            worst_arrival = a;
            worst_out = out;
        }
    }
    res.critical_path_ps = (worst_out == netlist::kNoNet) ? 0.0 : std::max(worst_arrival, 0.0);
    for (netlist::NetId net = worst_out; net != netlist::kNoNet;
         net = worst_input[static_cast<std::size_t>(net)])
        res.critical_path.push_back(net);
    std::reverse(res.critical_path.begin(), res.critical_path.end());
    return res;
}

double Sta::total_leakage_nw(const netlist::Netlist& nl, const cell::Library& lib) {
    double total = 0.0;
    for (const auto& gate : nl.gates()) total += lib.leakage_nw(gate.type);
    return total;
}

std::string format_path_report(const netlist::Netlist& nl, const StaResult& result) {
    std::ostringstream out;
    out << "critical path: " << result.critical_path_ps << " ps\n";
    for (netlist::NetId net : result.critical_path) {
        const auto driver = nl.driver(net);
        out << "  " << nl.net_name(net);
        if (driver >= 0)
            out << "  (" << cell::cell_name(nl.gates()[static_cast<std::size_t>(driver)].type)
                << ")";
        out << "  @ " << result.arrival(net) << " ps\n";
    }
    return out.str();
}

}  // namespace raq::sta
