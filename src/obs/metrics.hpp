// Lock-light metrics registry for the serving runtime.
//
// The serving hot path (account a batch, bump a queue gauge, observe a
// build latency) must never serialize behind a scrape: every instrument
// is a fixed set of cache-line-padded atomic shards — a writer picks its
// shard once per thread (a thread-local index) and does one relaxed
// fetch_add, so concurrent workers on different cores touch different
// cache lines. A scrape sums the shards; it is allowed to race with
// writers (each shard read is atomic, so a scrape sees a value that was
// true at some instant per shard — counters only ever under-report
// in-flight increments, never tear).
//
// Instruments are registered once by (name, labels) and the returned
// reference is stable for the registry's lifetime: callers cache the
// pointer at construction time and the hot path never touches the
// registry map or its mutex again.
//
// Exposition: Prometheus-style text (`expose()`) and JSONL (`jsonl()`),
// both safe to call concurrently with writers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace raq::obs {

/// Sorted key=value pairs identifying one series of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Shards per instrument. Serving fleets run a handful of workers plus a
/// few background threads; 8 padded slots keep same-instrument writers
/// on distinct cache lines without bloating every instrument.
inline constexpr std::size_t kMetricShards = 8;

/// This thread's shard slot (stable for the thread's lifetime; threads
/// are striped round-robin over the slots).
std::size_t metric_shard_index() noexcept;

/// Monotonically increasing event count. add() is wait-free (one relaxed
/// fetch_add on this thread's shard).
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        shards_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };
    Shard shards_[kMetricShards];
};

/// Last-written instantaneous value (clock period, ΔVth, queue depth).
/// One atomic double: gauges are written by one logical owner (a device,
/// the admission path) and read by scrapes.
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    /// Monotonic high-water mark (e.g. peak queue depth): lock-free CAS.
    void set_max(double v) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    void add(double delta) noexcept {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
        }
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

/// Aggregated histogram state at one scrape.
struct HistogramSnapshot {
    std::vector<double> bounds;           ///< inclusive upper bounds, ascending
    std::vector<std::uint64_t> buckets;   ///< per-bound counts (NOT cumulative)
    std::uint64_t count = 0;
    double sum = 0.0;
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// observations above the last bound land in the implicit +Inf bucket.
/// observe() is one relaxed fetch_add on this thread's shard row plus a
/// CAS-add on the shard's sum.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v) noexcept {
        const std::size_t b = bucket_of(v);
        const std::size_t shard = metric_shard_index();
        cells_[shard * stride_ + b].v.fetch_add(1, std::memory_order_relaxed);
        sums_[shard].add(v);
    }

    [[nodiscard]] HistogramSnapshot snapshot() const;
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Percentile estimate from the bucket counts (linear interpolation
    /// inside the bucket; the +Inf bucket reports its lower bound).
    [[nodiscard]] double quantile(double q) const;

private:
    [[nodiscard]] std::size_t bucket_of(double v) const noexcept {
        // Bucket counts are small (tens); a linear scan beats binary
        // search at this size and is branch-predictable.
        std::size_t b = 0;
        while (b < bounds_.size() && v > bounds_[b]) ++b;
        return b;  // == bounds_.size() → +Inf bucket
    }

    struct alignas(64) Cell {
        std::atomic<std::uint64_t> v{0};
    };
    struct alignas(64) PaddedGauge {
        void add(double d) noexcept {
            double cur = v.load(std::memory_order_relaxed);
            while (!v.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
            }
        }
        std::atomic<double> v{0.0};
    };

    std::vector<double> bounds_;
    std::size_t stride_ = 0;  ///< bounds + 1 (the +Inf bucket)
    std::vector<Cell> cells_;     ///< kMetricShards rows of stride_ cells
    std::vector<PaddedGauge> sums_;  ///< per-shard observation sums
};

/// Default bucket ladders for the serving runtime's common units.
[[nodiscard]] std::vector<double> default_ms_buckets();   ///< 0.5 .. 5000 ms
[[nodiscard]] std::vector<double> default_us_buckets();   ///< 1 .. 100000 µs
[[nodiscard]] std::vector<double> default_size_buckets(); ///< 1 .. 64

/// Name + labels → stable instrument references. Registration takes the
/// registry mutex (slow path, construction time); the instruments
/// themselves never do.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Idempotent per (name, labels): re-registration returns the same
    /// instrument. Registering an existing series as a different kind
    /// throws std::invalid_argument.
    Counter& counter(const std::string& name, const Labels& labels = {})
        RAQ_EXCLUDES(mutex_);
    Gauge& gauge(const std::string& name, const Labels& labels = {})
        RAQ_EXCLUDES(mutex_);
    /// `bounds` applies on first registration only (later calls must
    /// agree or pass empty to accept the existing ladder).
    Histogram& histogram(const std::string& name, const Labels& labels,
                         std::vector<double> bounds) RAQ_EXCLUDES(mutex_);

    /// Prometheus-style text exposition: one `# TYPE` line per metric
    /// name, one `name{labels} value` line per series, sorted by name
    /// then labels (deterministic golden-testable output).
    [[nodiscard]] std::string expose() const RAQ_EXCLUDES(mutex_);
    /// One JSON object per line per series.
    [[nodiscard]] std::string jsonl() const RAQ_EXCLUDES(mutex_);

    /// Scrape a single series (nullptr-safe lookups for tests/benches).
    [[nodiscard]] const Counter* find_counter(const std::string& name,
                                              const Labels& labels = {}) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                          const Labels& labels = {}) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                  const Labels& labels = {}) const;
    /// Sum of every series of counter `name` across label sets (what a
    /// dashboard's `sum(rate(...))` would read).
    [[nodiscard]] std::uint64_t counter_sum(const std::string& name) const
        RAQ_EXCLUDES(mutex_);

private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Entry {
        std::string name;
        Labels labels;
        Kind kind = Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& entry(const std::string& name, const Labels& labels, Kind kind,
                 std::vector<double>* bounds) RAQ_EXCLUDES(mutex_);
    [[nodiscard]] const Entry* find(const std::string& name, const Labels& labels,
                                    Kind kind) const RAQ_EXCLUDES(mutex_);

    /// Guards only the registry map. The instruments themselves are
    /// deliberately NOT mutex-guarded: Counter/Gauge/Histogram are
    /// sharded relaxed atomics (wait-free writers racing scrapes by
    /// design), which the annotations leave alone.
    mutable common::Mutex mutex_;
    /// Keyed by name + serialized labels: std::map nodes are stable, so
    /// instrument references survive any number of later registrations.
    std::map<std::string, Entry> entries_ RAQ_GUARDED_BY(mutex_);
};

}  // namespace raq::obs
