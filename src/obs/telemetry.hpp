// The telemetry bundle a serving fleet owns: one metrics registry, one
// trace collector, one reliability-event timeline. NpuServer constructs
// it from TelemetryConfig and hands a raw pointer down to devices and
// shard groups; a null pointer (or metrics=false) means telemetry is
// compiled in but disabled, and the instrumented code paths reduce to a
// null-check branch.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace raq::obs {

struct TelemetryConfig {
    /// Master switch: false = no Telemetry object is built at all.
    bool metrics = false;
    /// Fraction of requests traced ([0,1]); 0 disables tracing. Only
    /// meaningful when metrics is true.
    double trace_sample_rate = 0.0;
    /// Finished-trace reservoir capacity (Algorithm R over the stream).
    std::size_t trace_reservoir = 256;
    /// Seed for the deterministic sampling decisions and the reservoir;
    /// servers typically pass their stream seed so traces reproduce.
    std::uint64_t seed = 0x0b5ecafeULL;
    /// Bounded reliability-event log length.
    std::size_t timeline_capacity = 1024;
};

class Telemetry {
public:
    explicit Telemetry(const TelemetryConfig& config)
        : config_(config),
          traces_(config.trace_sample_rate, config.trace_reservoir, config.seed),
          timeline_(config.timeline_capacity) {}

    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
    [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
    [[nodiscard]] TraceCollector& traces() { return traces_; }
    [[nodiscard]] const TraceCollector& traces() const { return traces_; }
    [[nodiscard]] EventTimeline& timeline() { return timeline_; }
    [[nodiscard]] const EventTimeline& timeline() const { return timeline_; }
    [[nodiscard]] const TelemetryConfig& config() const { return config_; }

private:
    const TelemetryConfig config_;
    MetricsRegistry metrics_;
    TraceCollector traces_;
    EventTimeline timeline_;
};

}  // namespace raq::obs
