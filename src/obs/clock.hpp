// The one monotonic clock for telemetry timestamps: microseconds on
// std::chrono::steady_clock since a process-wide epoch (latched on first
// use — in practice, server construction). Every span, reliability event
// and RequantEvent timestamp comes from here, so orderings reconstructed
// across devices, groups and background threads are consistent.
#pragma once

#include <chrono>
#include <cstdint>

namespace raq::obs {

inline std::int64_t monotonic_us() noexcept {
    // Magic-static epoch: initialized exactly once, thread-safe. Latched
    // 1 µs in the past so the very first caller still reads > 0 — a
    // zero timestamp always means "never stamped", never "stamped at
    // the epoch".
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now() - std::chrono::microseconds(1);
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

}  // namespace raq::obs
