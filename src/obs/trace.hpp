// Per-request tracing: a TraceContext rides on a sampled request and
// records one span per hop of its life — admission queue, batcher,
// shard-stage handoff channels, device execution, completion — all
// stamped with obs::monotonic_us().
//
// Sampling is deterministic: whether request id r is traced depends only
// on (trace_seed, r) via common::stream_seed, never on thread timing —
// two runs over the same id stream sample the same requests, so traces
// are reproducible evidence, not lucky catches. Finished traces land in
// a fixed-capacity reservoir (Vitter's Algorithm R over the finish
// stream, common::Rng), so a long-lived server keeps a bounded, uniform
// sample of its history.
//
// Concurrency contract: a TraceContext is owned by exactly one thread at
// a time — the request (and its trace pointer) moves worker → stage →
// stage through BoundedChannel handoffs, whose mutexes provide the
// happens-before edges — so mark() needs no lock. Only the collector's
// finish()/snapshot() take a mutex, and only for sampled requests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "obs/clock.hpp"

namespace raq::obs {

/// What a span's time interval was spent on.
enum class SpanKind : std::uint8_t {
    Queue,    ///< admission queue: submit → worker pop
    Batch,    ///< batching + unit checkout: pop → execution start
    Handoff,  ///< shard-stage handoff channel: prior stage done → stage pop
    Execute,  ///< device/shard execution (device_id + generation set)
    Complete, ///< promise fulfilled (zero-length marker span)
};

[[nodiscard]] const char* span_kind_name(SpanKind kind) noexcept;

struct TraceSpan {
    SpanKind kind = SpanKind::Queue;
    int device_id = -1;             ///< executing device (Execute), else -1
    int stage = -1;                 ///< pipeline stage (sharded), else -1
    std::uint64_t generation = 0;   ///< ModelState generation (Execute)
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
};

/// The spans of one request's journey. mark() closes the interval since
/// the previous mark as a span of `kind`.
struct TraceContext {
    std::uint64_t request_id = 0;
    std::int64_t start_us = 0;  ///< admission timestamp
    std::int64_t last_us = 0;
    std::vector<TraceSpan> spans;

    void mark(SpanKind kind, std::int64_t now_us, int device_id = -1, int stage = -1,
              std::uint64_t generation = 0) {
        TraceSpan span;
        span.kind = kind;
        span.device_id = device_id;
        span.stage = stage;
        span.generation = generation;
        span.start_us = last_us;
        span.end_us = now_us;
        spans.push_back(span);
        last_us = now_us;
    }

    [[nodiscard]] std::int64_t total_us() const {
        return spans.empty() ? 0 : spans.back().end_us - start_us;
    }
    /// One-line text rendering: "req 42 @1200µs: queue 110µs → ... [total 300µs]".
    [[nodiscard]] std::string to_string() const;
};

class TraceCollector {
public:
    /// `sample_rate` in [0,1]; 0 disables tracing entirely. `capacity`
    /// bounds the reservoir of finished traces.
    TraceCollector(double sample_rate, std::size_t capacity, std::uint64_t seed);

    /// Pure sampling predicate: depends only on (seed, request_id).
    [[nodiscard]] bool sampled(std::uint64_t request_id) const noexcept {
        if (rate_ <= 0.0) return false;
        if (rate_ >= 1.0) return true;
        common::Rng rng(common::stream_seed(seed_, request_id));
        return rng.next_double() < rate_;
    }

    /// Start a trace for this request if it is sampled (null otherwise).
    [[nodiscard]] std::shared_ptr<TraceContext> maybe_start(std::uint64_t request_id,
                                                            std::int64_t now_us)
        RAQ_EXCLUDES(mutex_);

    /// File a finished trace into the reservoir. Accepts null (no-op) so
    /// callers can pass request.trace unconditionally after moving it.
    void finish(std::shared_ptr<TraceContext> trace) RAQ_EXCLUDES(mutex_);

    [[nodiscard]] std::uint64_t started() const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::uint64_t finished() const RAQ_EXCLUDES(mutex_);
    /// Deep copies of the reservoir's traces, in finish order.
    [[nodiscard]] std::vector<TraceContext> snapshot() const RAQ_EXCLUDES(mutex_);
    /// Text exposition of every reservoir trace, one line per trace.
    [[nodiscard]] std::string render() const RAQ_EXCLUDES(mutex_);

    [[nodiscard]] double sample_rate() const noexcept { return rate_; }

private:
    const double rate_;
    const std::size_t capacity_;
    const std::uint64_t seed_;

    /// TraceContext itself is intentionally unguarded: a context is
    /// thread-confined by handoff (the channel mutexes provide the
    /// happens-before edges), so mark() stays lock-free; only the
    /// collector's shared state below is mutex-guarded.
    mutable common::Mutex mutex_;
    common::Rng reservoir_rng_ RAQ_GUARDED_BY(mutex_);
    std::vector<std::shared_ptr<TraceContext>> reservoir_ RAQ_GUARDED_BY(mutex_);
    std::uint64_t started_ RAQ_GUARDED_BY(mutex_) = 0;
    std::uint64_t finished_ RAQ_GUARDED_BY(mutex_) = 0;
};

}  // namespace raq::obs
