#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace raq::obs {

std::size_t metric_shard_index() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return slot;
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument("Histogram: bucket bounds must be ascending");
    stride_ = bounds_.size() + 1;  // +Inf bucket
    cells_ = std::vector<Cell>(kMetricShards * stride_);
    sums_ = std::vector<PaddedGauge>(kMetricShards);
}

HistogramSnapshot Histogram::snapshot() const {
    HistogramSnapshot s;
    s.bounds = bounds_;
    s.buckets.assign(stride_, 0);
    for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
        for (std::size_t b = 0; b < stride_; ++b)
            s.buckets[b] += cells_[shard * stride_ + b].v.load(std::memory_order_relaxed);
        s.sum += sums_[shard].v.load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : s.buckets) s.count += c;
    return s;
}

double Histogram::quantile(double q) const {
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("Histogram: q outside [0,1]");
    const HistogramSnapshot s = snapshot();
    if (s.count == 0) return 0.0;
    const double target = q * static_cast<double>(s.count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        const std::uint64_t next = seen + s.buckets[b];
        if (static_cast<double>(next) >= target && s.buckets[b] > 0) {
            const double lo = b == 0 ? 0.0 : bounds_[b - 1];
            if (b == bounds_.size()) return lo;  // +Inf bucket: report its floor
            const double frac =
                (target - static_cast<double>(seen)) / static_cast<double>(s.buckets[b]);
            return lo + frac * (bounds_[b] - lo);
        }
        seen = next;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> default_ms_buckets() {
    return {0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000};
}
std::vector<double> default_us_buckets() {
    return {1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000};
}
std::vector<double> default_size_buckets() { return {1, 2, 4, 8, 16, 32, 64}; }

// -------------------------------------------------------------- Registry

namespace {

/// Series key: name plus the serialized (already-sorted) label pairs.
std::string series_key(const std::string& name, const Labels& labels) {
    std::string key = name;
    for (const auto& [k, v] : labels) {
        key += '\x1f';  // unit separator: cannot appear in sane label text
        key += k;
        key += '\x1e';
        key += v;
    }
    return key;
}

Labels sorted_labels(Labels labels) {
    std::sort(labels.begin(), labels.end());
    return labels;
}

std::string label_block(const Labels& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out += ",";
        out += labels[i].first + "=\"" + labels[i].second + "\"";
    }
    out += "}";
    return out;
}

std::string json_labels(const Labels& labels) {
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i) out += ",";
        out += "\"" + labels[i].first + "\":\"" + labels[i].second + "\"";
    }
    out += "}";
    return out;
}

std::string fmt_double(double v) {
    char buf[64];
    // %g keeps integers clean ("42" not "42.000000") while preserving
    // enough precision for ps-scale gauges.
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               const Labels& labels, Kind kind,
                                               std::vector<double>* bounds) {
    const Labels sorted = sorted_labels(labels);
    const std::string key = series_key(name, sorted);
    const common::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        if (it->second.kind != kind)
            throw std::invalid_argument("MetricsRegistry: '" + name +
                                        "' already registered as a different kind");
        return it->second;
    }
    Entry e;
    e.name = name;
    e.labels = sorted;
    e.kind = kind;
    switch (kind) {
        case Kind::Counter: e.counter = std::make_unique<Counter>(); break;
        case Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
        case Kind::Histogram:
            e.histogram = std::make_unique<Histogram>(
                bounds && !bounds->empty() ? std::move(*bounds) : default_us_buckets());
            break;
    }
    return entries_.emplace(key, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
    return *entry(name, labels, Kind::Counter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
    return *entry(name, labels, Kind::Gauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      std::vector<double> bounds) {
    return *entry(name, labels, Kind::Histogram, &bounds).histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    const Labels& labels,
                                                    Kind kind) const {
    const std::string key = series_key(name, sorted_labels(labels));
    const common::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.kind != kind) return nullptr;
    return &it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::Counter);
    return e ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::Gauge);
    return e ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
    const Entry* e = find(name, labels, Kind::Histogram);
    return e ? e->histogram.get() : nullptr;
}

std::uint64_t MetricsRegistry::counter_sum(const std::string& name) const {
    const common::MutexLock lock(mutex_);
    std::uint64_t sum = 0;
    for (const auto& [key, e] : entries_)
        if (e.kind == Kind::Counter && e.name == name) sum += e.counter->value();
    return sum;
}

std::string MetricsRegistry::expose() const {
    const common::MutexLock lock(mutex_);
    std::string out;
    std::string last_typed;  // TYPE line emitted once per metric name
    char line[256];
    // std::map iterates in key order == (name, labels) order: the series
    // of one metric are contiguous and the output is deterministic.
    for (const auto& [key, e] : entries_) {
        if (e.name != last_typed) {
            const char* type = e.kind == Kind::Counter ? "counter"
                               : e.kind == Kind::Gauge ? "gauge"
                                                       : "histogram";
            out += "# TYPE " + e.name + " " + type + "\n";
            last_typed = e.name;
        }
        const std::string labels = label_block(e.labels);
        switch (e.kind) {
            case Kind::Counter:
                std::snprintf(line, sizeof(line), "%s%s %" PRIu64 "\n", e.name.c_str(),
                              labels.c_str(), e.counter->value());
                out += line;
                break;
            case Kind::Gauge:
                out += e.name + labels + " " + fmt_double(e.gauge->value()) + "\n";
                break;
            case Kind::Histogram: {
                const HistogramSnapshot s = e.histogram->snapshot();
                std::uint64_t cumulative = 0;
                for (std::size_t b = 0; b < s.buckets.size(); ++b) {
                    cumulative += s.buckets[b];
                    Labels le = e.labels;
                    le.emplace_back("le", b < s.bounds.size()
                                              ? fmt_double(s.bounds[b])
                                              : std::string("+Inf"));
                    std::snprintf(line, sizeof(line), "%s_bucket%s %" PRIu64 "\n",
                                  e.name.c_str(), label_block(le).c_str(), cumulative);
                    out += line;
                }
                out += e.name + "_sum" + labels + " " + fmt_double(s.sum) + "\n";
                std::snprintf(line, sizeof(line), "%s_count%s %" PRIu64 "\n",
                              e.name.c_str(), labels.c_str(), s.count);
                out += line;
                break;
            }
        }
    }
    return out;
}

std::string MetricsRegistry::jsonl() const {
    const common::MutexLock lock(mutex_);
    std::string out;
    char buf[128];
    for (const auto& [key, e] : entries_) {
        out += "{\"name\":\"" + e.name + "\",\"labels\":" + json_labels(e.labels);
        switch (e.kind) {
            case Kind::Counter:
                std::snprintf(buf, sizeof(buf), ",\"type\":\"counter\",\"value\":%" PRIu64,
                              e.counter->value());
                out += buf;
                break;
            case Kind::Gauge:
                out += ",\"type\":\"gauge\",\"value\":" + fmt_double(e.gauge->value());
                break;
            case Kind::Histogram: {
                const HistogramSnapshot s = e.histogram->snapshot();
                out += ",\"type\":\"histogram\",\"bounds\":[";
                for (std::size_t b = 0; b < s.bounds.size(); ++b)
                    out += (b ? "," : "") + fmt_double(s.bounds[b]);
                out += "],\"buckets\":[";
                for (std::size_t b = 0; b < s.buckets.size(); ++b) {
                    std::snprintf(buf, sizeof(buf), "%s%" PRIu64, b ? "," : "",
                                  s.buckets[b]);
                    out += buf;
                }
                std::snprintf(buf, sizeof(buf), "],\"count\":%" PRIu64, s.count);
                out += buf;
                out += ",\"sum\":" + fmt_double(s.sum);
                break;
            }
        }
        out += "}\n";
    }
    return out;
}

}  // namespace raq::obs
