#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace raq::obs {

const char* span_kind_name(SpanKind kind) noexcept {
    switch (kind) {
        case SpanKind::Queue: return "queue";
        case SpanKind::Batch: return "batch";
        case SpanKind::Handoff: return "handoff";
        case SpanKind::Execute: return "execute";
        case SpanKind::Complete: return "complete";
    }
    return "?";
}

std::string TraceContext::to_string() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "req %" PRIu64 " @%" PRId64 "us:", request_id,
                  start_us);
    std::string out = buf;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const TraceSpan& s = spans[i];
        out += i ? " -> " : " ";
        out += span_kind_name(s.kind);
        if (s.kind == SpanKind::Execute) {
            std::snprintf(buf, sizeof(buf), "[dev=%d", s.device_id);
            out += buf;
            if (s.stage >= 0) {
                std::snprintf(buf, sizeof(buf), ",stage=%d", s.stage);
                out += buf;
            }
            std::snprintf(buf, sizeof(buf), ",gen=%" PRIu64 "]", s.generation);
            out += buf;
        }
        std::snprintf(buf, sizeof(buf), " %" PRId64 "us", s.end_us - s.start_us);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), " [total %" PRId64 "us]", total_us());
    out += buf;
    return out;
}

TraceCollector::TraceCollector(double sample_rate, std::size_t capacity,
                               std::uint64_t seed)
    : rate_(sample_rate),
      capacity_(capacity),
      seed_(seed),
      // A distinct stream from the per-request sampling decisions: the
      // reservoir's replacement choices must not correlate with which
      // requests were sampled.
      reservoir_rng_(common::stream_seed(seed, 0x0b5e77a1ull)) {}

std::shared_ptr<TraceContext> TraceCollector::maybe_start(std::uint64_t request_id,
                                                          std::int64_t now_us) {
    if (!sampled(request_id)) return nullptr;
    auto trace = std::make_shared<TraceContext>();
    trace->request_id = request_id;
    trace->start_us = now_us;
    trace->last_us = now_us;
    {
        const common::MutexLock lock(mutex_);
        ++started_;
    }
    return trace;
}

void TraceCollector::finish(std::shared_ptr<TraceContext> trace) {
    if (!trace) return;
    const common::MutexLock lock(mutex_);
    ++finished_;
    if (reservoir_.size() < capacity_) {
        reservoir_.push_back(std::move(trace));
        return;
    }
    if (capacity_ == 0) return;
    // Algorithm R: the i-th finished trace replaces a random slot with
    // probability capacity/i, keeping the reservoir a uniform sample.
    const std::uint64_t slot = reservoir_rng_.next_below(finished_);
    if (slot < capacity_) reservoir_[static_cast<std::size_t>(slot)] = std::move(trace);
}

std::uint64_t TraceCollector::started() const {
    const common::MutexLock lock(mutex_);
    return started_;
}

std::uint64_t TraceCollector::finished() const {
    const common::MutexLock lock(mutex_);
    return finished_;
}

std::vector<TraceContext> TraceCollector::snapshot() const {
    const common::MutexLock lock(mutex_);
    std::vector<TraceContext> out;
    out.reserve(reservoir_.size());
    for (const auto& t : reservoir_) out.push_back(*t);
    return out;
}

std::string TraceCollector::render() const {
    std::string out;
    for (const TraceContext& t : snapshot()) {
        out += t.to_string();
        out += '\n';
    }
    return out;
}

}  // namespace raq::obs
