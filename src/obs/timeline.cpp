#include "obs/timeline.hpp"

#include <cinttypes>
#include <cstdio>

namespace raq::obs {

const char* event_kind_name(EventKind kind) noexcept {
    switch (kind) {
        case EventKind::RequantBuild: return "requant-build";
        case EventKind::RequantSwap: return "requant-swap";
        case EventKind::RecutTrigger: return "recut-trigger";
        case EventKind::Recut: return "recut";
        case EventKind::RecutFutile: return "recut-futile";
        case EventKind::NetListen: return "net-listen";
        case EventKind::NetOverload: return "net-overload";
        case EventKind::NetDrain: return "net-drain";
        case EventKind::WindowPredicted: return "window-predicted";
        case EventKind::BuildScheduled: return "build-scheduled";
        case EventKind::BuildDeferred: return "build-deferred";
    }
    return "?";
}

std::string ReliabilityEvent::to_string() const {
    char buf[192];
    std::string out;
    std::snprintf(buf, sizeof(buf), "[%10" PRId64 "us] %-13s", t_us,
                  event_kind_name(kind));
    out += buf;
    if (group_id >= 0) {
        std::snprintf(buf, sizeof(buf), " group=%d", group_id);
        out += buf;
    }
    if (device_id >= 0) {
        std::snprintf(buf, sizeof(buf), " dev=%d", device_id);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), " gen=%" PRIu64, generation);
    out += buf;
    if (value != 0.0) {
        std::snprintf(buf, sizeof(buf), " value=%.3g", value);
        out += buf;
    }
    if (!detail.empty()) {
        out += "  ";
        out += detail;
    }
    return out;
}

void EventTimeline::record(ReliabilityEvent event) {
    const common::MutexLock lock(mutex_);
    ++total_;
    ++counts_[static_cast<std::size_t>(event.kind)];
    events_.push_back(std::move(event));
    while (events_.size() > capacity_) events_.pop_front();
}

std::size_t EventTimeline::size() const {
    const common::MutexLock lock(mutex_);
    return events_.size();
}

std::uint64_t EventTimeline::total_recorded() const {
    const common::MutexLock lock(mutex_);
    return total_;
}

std::uint64_t EventTimeline::count(EventKind kind) const {
    const common::MutexLock lock(mutex_);
    return counts_[static_cast<std::size_t>(kind)];
}

std::vector<ReliabilityEvent> EventTimeline::snapshot() const {
    const common::MutexLock lock(mutex_);
    return {events_.begin(), events_.end()};
}

std::string EventTimeline::render() const {
    std::string out;
    for (const ReliabilityEvent& e : snapshot()) {
        out += e.to_string();
        out += '\n';
    }
    return out;
}

}  // namespace raq::obs
