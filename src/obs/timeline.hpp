// Fleet-wide reliability-event timeline: every requant build/swap and
// every re-partition trigger/re-cut is recorded as one timestamped event
// in a single bounded log, so "what did the fleet's reliability machinery
// do, and when, relative to serving traffic" is answerable from one
// ordered text rendering — the view Algorithm 1's online deployment needs
// and that per-device RequantEvent vectors cannot give (they lack a
// shared clock ordering across devices).
//
// record() takes a short mutex; reliability events fire at most a few
// times per second, far off the serving hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace raq::obs {

enum class EventKind : std::uint8_t {
    RequantBuild,   ///< background Algorithm 1 rebuild finished (build_ms set)
    RequantSwap,    ///< new ModelState adopted at a batch boundary
    RecutTrigger,   ///< RepartitionMonitor saw imbalance past threshold
    Recut,          ///< drain-and-swap re-cut installed a new partition
    RecutFutile,    ///< trigger fired but the optimal cut was unchanged
    NetListen,      ///< net front-end began accepting connections (value = port)
    NetOverload,    ///< admission queue saturated, BUSY shed began (rate-limited)
    NetDrain,       ///< net front-end shutdown cascade completed (value = drained)
    WindowPredicted,///< planner saw traffic enter a predicted low window
    BuildScheduled, ///< planner released a requant build / re-cut into a window
    BuildDeferred,  ///< planner held back due reliability work for a quieter window
};

inline constexpr std::size_t kNumEventKinds = 11;

[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

struct ReliabilityEvent {
    std::int64_t t_us = 0;        ///< obs::monotonic_us() at the event
    EventKind kind = EventKind::RequantSwap;
    int device_id = -1;           ///< owning device (or -1 for group-level)
    int group_id = -1;            ///< shard group (or -1 for flat devices)
    std::uint64_t generation = 0; ///< model/partition generation after the event
    double value = 0.0;           ///< kind-specific: build_ms, imbalance ratio...
    std::string detail;           ///< human-readable one-liner ("2b @60% -> 4b @80%")

    [[nodiscard]] std::string to_string() const;
};

class EventTimeline {
public:
    explicit EventTimeline(std::size_t capacity = 1024) : capacity_(capacity) {}

    void record(ReliabilityEvent event) RAQ_EXCLUDES(mutex_);

    [[nodiscard]] std::size_t size() const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::uint64_t total_recorded() const RAQ_EXCLUDES(mutex_);
    [[nodiscard]] std::uint64_t count(EventKind kind) const RAQ_EXCLUDES(mutex_);
    /// Events in record order (== t_us order up to clock resolution).
    [[nodiscard]] std::vector<ReliabilityEvent> snapshot() const RAQ_EXCLUDES(mutex_);
    /// Text exposition, one event per line, oldest first.
    [[nodiscard]] std::string render() const RAQ_EXCLUDES(mutex_);

private:
    const std::size_t capacity_;
    mutable common::Mutex mutex_;
    /// Oldest dropped past capacity_.
    std::deque<ReliabilityEvent> events_ RAQ_GUARDED_BY(mutex_);
    std::uint64_t total_ RAQ_GUARDED_BY(mutex_) = 0;
    /// One slot per EventKind.
    std::uint64_t counts_[kNumEventKinds] RAQ_GUARDED_BY(mutex_) = {};
};

}  // namespace raq::obs
