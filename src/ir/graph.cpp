#include "ir/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace raq::ir {

const char* op_kind_name(OpKind kind) {
    switch (kind) {
        case OpKind::Conv2d: return "conv2d";
        case OpKind::Relu: return "relu";
        case OpKind::MaxPool2d: return "maxpool2d";
        case OpKind::GlobalAvgPool: return "gap";
        case OpKind::Add: return "add";
        case OpKind::Concat: return "concat";
    }
    return "?";
}

int Graph::add_input(tensor::Shape shape) {
    if (input_id_ != -1) throw std::logic_error("Graph: input already added");
    input_shape_ = shape;
    input_id_ = num_tensors_++;
    return input_id_;
}

int Graph::add(Op op) {
    if (input_id_ == -1) throw std::logic_error("Graph: add_input first");
    for (int in : op.inputs)
        if (in < 0 || in >= num_tensors_)
            throw std::out_of_range("Graph: op input tensor does not exist");
    if (op.kind == OpKind::Conv2d) {
        const std::size_t expect_w = static_cast<std::size_t>(op.conv.out_c) *
                                     static_cast<std::size_t>(op.conv.in_c) *
                                     static_cast<std::size_t>(op.conv.kh) *
                                     static_cast<std::size_t>(op.conv.kw);
        if (op.weights.size() != expect_w)
            throw std::invalid_argument("Graph: conv weight size mismatch for " + op.name);
        if (op.bias.size() != static_cast<std::size_t>(op.conv.out_c))
            throw std::invalid_argument("Graph: conv bias size mismatch for " + op.name);
        if (op.inputs.size() != 1) throw std::invalid_argument("Graph: conv takes one input");
    }
    op.output = num_tensors_++;
    ops_.push_back(std::move(op));
    return ops_.back().output;
}

void Graph::set_output(int tensor_id) {
    if (tensor_id < 0 || tensor_id >= num_tensors_)
        throw std::out_of_range("Graph: output tensor does not exist");
    output_id_ = tensor_id;
}

std::vector<tensor::Shape> infer_shapes(const Graph& graph, int batch_n) {
    std::vector<tensor::Shape> shapes(static_cast<std::size_t>(graph.num_tensors()));
    tensor::Shape in = graph.input_shape();
    in.n = batch_n;
    shapes[static_cast<std::size_t>(graph.input_id())] = in;
    for (const Op& op : graph.ops()) {
        const tensor::Shape& s0 = shapes[static_cast<std::size_t>(op.inputs.at(0))];
        tensor::Shape out = s0;
        switch (op.kind) {
            case OpKind::Conv2d:
                if (s0.c != op.conv.in_c)
                    throw std::invalid_argument("infer_shapes: channel mismatch at " + op.name);
                out.c = op.conv.out_c;
                out.h = tensor::conv_out_dim(s0.h, op.conv.kh, op.conv.stride, op.conv.pad);
                out.w = tensor::conv_out_dim(s0.w, op.conv.kw, op.conv.stride, op.conv.pad);
                break;
            case OpKind::Relu:
                break;
            case OpKind::MaxPool2d:
                out.h = tensor::conv_out_dim(s0.h, op.pool.kernel, op.pool.stride, 0);
                out.w = tensor::conv_out_dim(s0.w, op.pool.kernel, op.pool.stride, 0);
                break;
            case OpKind::GlobalAvgPool:
                out.h = out.w = 1;
                break;
            case OpKind::Add: {
                const tensor::Shape& s1 = shapes[static_cast<std::size_t>(op.inputs.at(1))];
                if (!(s0 == s1))
                    throw std::invalid_argument("infer_shapes: add shape mismatch at " + op.name);
                break;
            }
            case OpKind::Concat: {
                int channels = 0;
                for (int in_id : op.inputs) {
                    const tensor::Shape& si = shapes[static_cast<std::size_t>(in_id)];
                    if (si.h != s0.h || si.w != s0.w || si.n != s0.n)
                        throw std::invalid_argument("infer_shapes: concat mismatch at " + op.name);
                    channels += si.c;
                }
                out.c = channels;
                break;
            }
        }
        shapes[static_cast<std::size_t>(op.output)] = out;
    }
    return shapes;
}

std::vector<int> op_levels(const Graph& graph) {
    std::vector<int> tensor_level(static_cast<std::size_t>(graph.num_tensors()), 0);
    std::vector<int> levels(graph.ops().size(), 0);
    const auto& ops = graph.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        int level = 0;
        for (const int in : ops[i].inputs)
            level = std::max(level, tensor_level[static_cast<std::size_t>(in)]);
        tensor_level[static_cast<std::size_t>(ops[i].output)] = level + 1;
        levels[i] = level;
    }
    return levels;
}

std::vector<int> tensor_last_use(const Graph& graph) {
    std::vector<int> last_use(static_cast<std::size_t>(graph.num_tensors()), -1);
    const auto& ops = graph.ops();
    for (std::size_t i = 0; i < ops.size(); ++i)
        for (const int in : ops[i].inputs)
            last_use[static_cast<std::size_t>(in)] =
                std::max(last_use[static_cast<std::size_t>(in)], static_cast<int>(i));
    return last_use;
}

bool topology_equals(const Graph& a, const Graph& b) {
    if (a.num_tensors() != b.num_tensors() || a.input_id() != b.input_id() ||
        a.output_id() != b.output_id() || !(a.input_shape() == b.input_shape()) ||
        a.ops().size() != b.ops().size())
        return false;
    for (std::size_t i = 0; i < a.ops().size(); ++i) {
        const Op& x = a.ops()[i];
        const Op& y = b.ops()[i];
        if (x.kind != y.kind || x.inputs != y.inputs || x.output != y.output) return false;
        if (x.kind == OpKind::Conv2d &&
            (x.conv.in_c != y.conv.in_c || x.conv.out_c != y.conv.out_c ||
             x.conv.kh != y.conv.kh || x.conv.kw != y.conv.kw ||
             x.conv.stride != y.conv.stride || x.conv.pad != y.conv.pad))
            return false;
        if (x.kind == OpKind::MaxPool2d &&
            (x.pool.kernel != y.pool.kernel || x.pool.stride != y.pool.stride))
            return false;
    }
    return true;
}

std::uint64_t topology_fingerprint(const Graph& graph) {
    // FNV-1a over the same fields topology_equals inspects, in the same
    // order, so structurally equal graphs hash identically.
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t v) {
        // Hash every byte of v so fields that differ only in high bits
        // (and adjacent small ints) still diffuse.
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ULL;
        }
    };
    mix(static_cast<std::uint64_t>(graph.num_tensors()));
    mix(static_cast<std::uint64_t>(graph.input_id()));
    mix(static_cast<std::uint64_t>(graph.output_id()));
    const tensor::Shape& in = graph.input_shape();
    mix(static_cast<std::uint64_t>(in.n));
    mix(static_cast<std::uint64_t>(in.c));
    mix(static_cast<std::uint64_t>(in.h));
    mix(static_cast<std::uint64_t>(in.w));
    for (const Op& op : graph.ops()) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(op.inputs.size());
        for (const int id : op.inputs) mix(static_cast<std::uint64_t>(id));
        mix(static_cast<std::uint64_t>(op.output));
        if (op.kind == OpKind::Conv2d) {
            mix(static_cast<std::uint64_t>(op.conv.in_c));
            mix(static_cast<std::uint64_t>(op.conv.out_c));
            mix(static_cast<std::uint64_t>(op.conv.kh));
            mix(static_cast<std::uint64_t>(op.conv.kw));
            mix(static_cast<std::uint64_t>(op.conv.stride));
            mix(static_cast<std::uint64_t>(op.conv.pad));
        }
        if (op.kind == OpKind::MaxPool2d) {
            mix(static_cast<std::uint64_t>(op.pool.kernel));
            mix(static_cast<std::uint64_t>(op.pool.stride));
        }
    }
    return h;
}

std::uint64_t Graph::macs_per_sample() const {
    const auto shapes = infer_shapes(*this, 1);
    std::uint64_t total = 0;
    for (const Op& op : ops_) {
        if (op.kind != OpKind::Conv2d) continue;
        const tensor::Shape& out = shapes[static_cast<std::size_t>(op.output)];
        total += static_cast<std::uint64_t>(out.c) * static_cast<std::uint64_t>(out.h) *
                 static_cast<std::uint64_t>(out.w) * static_cast<std::uint64_t>(op.conv.in_c) *
                 static_cast<std::uint64_t>(op.conv.kh) * static_cast<std::uint64_t>(op.conv.kw);
    }
    return total;
}

int Graph::num_conv_ops() const {
    int count = 0;
    for (const Op& op : ops_) count += (op.kind == OpKind::Conv2d);
    return count;
}

std::string Graph::summary() const {
    const auto shapes = infer_shapes(*this, 1);
    std::ostringstream out;
    out << "input " << input_shape_.to_string() << "\n";
    for (const Op& op : ops_) {
        out << "  " << op_kind_name(op.kind) << " " << op.name << " -> t" << op.output << " "
            << shapes[static_cast<std::size_t>(op.output)].to_string() << "\n";
    }
    out << "macs/sample: " << macs_per_sample() << "\n";
    return out.str();
}

}  // namespace raq::ir
