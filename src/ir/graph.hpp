// Deployment IR: the flat inference graph that the quantization library
// and the NPU model consume.
//
// Training happens on nn::Module objects; Network::export_ir() lowers the
// module tree into this IR with BatchNorm folded into the preceding
// convolution (standard deployment practice, and what the paper's PyTorch
// post-training-quantization flow sees). Linear layers are lowered to
// convolutions whose kernel covers the full spatial extent, so every MAC
// operation in the network goes through a single op kind — mirroring how
// an NPU executes both conv and FC layers on the same MAC array.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace raq::ir {

enum class OpKind { Conv2d, Relu, MaxPool2d, GlobalAvgPool, Add, Concat };

[[nodiscard]] const char* op_kind_name(OpKind kind);

struct ConvAttrs {
    int in_c = 0, out_c = 0;
    int kh = 1, kw = 1;
    int stride = 1, pad = 0;
};

struct PoolAttrs {
    int kernel = 2, stride = 2;
};

struct Op {
    OpKind kind = OpKind::Relu;
    std::vector<int> inputs;  ///< tensor ids
    int output = -1;          ///< assigned by Graph::add
    std::string name;

    ConvAttrs conv;
    PoolAttrs pool;
    std::vector<float> weights;  ///< Conv2d: [out_c][in_c*kh*kw] row-major
    std::vector<float> bias;     ///< Conv2d: [out_c]
};

class Graph {
public:
    /// Create the graph input tensor; must be called exactly once, first.
    int add_input(tensor::Shape shape);

    /// Append an op; assigns and returns its output tensor id.
    int add(Op op);

    void set_output(int tensor_id);

    [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
    [[nodiscard]] int num_tensors() const { return num_tensors_; }
    [[nodiscard]] int input_id() const { return input_id_; }
    [[nodiscard]] int output_id() const { return output_id_; }
    [[nodiscard]] const tensor::Shape& input_shape() const { return input_shape_; }

    /// Total multiply-accumulate count per single input sample.
    [[nodiscard]] std::uint64_t macs_per_sample() const;

    /// Number of MAC-bearing ops (convolutions, incl. lowered FC layers).
    [[nodiscard]] int num_conv_ops() const;

    /// Human-readable summary (op list with shapes/MACs).
    [[nodiscard]] std::string summary() const;

private:
    std::vector<Op> ops_;
    int num_tensors_ = 0;
    int input_id_ = -1;
    int output_id_ = -1;
    tensor::Shape input_shape_;
};

/// Infer per-tensor shapes for a batch with `batch_n` samples.
[[nodiscard]] std::vector<tensor::Shape> infer_shapes(const Graph& graph, int batch_n);

/// Dependency level per op: max level of its input tensors, where the
/// graph input is level 0 and an op's output is its level + 1. Ops on
/// one level are mutually independent. The single definition behind the
/// exec schedule's levels and the partitioner's cut metadata.
[[nodiscard]] std::vector<int> op_levels(const Graph& graph);

/// Last-consumer op index per tensor id (-1: never consumed). No
/// pinning: callers decide what stays live past its last consumer (the
/// exec arena pins the graph input/output; the partitioner pins only
/// the output).
[[nodiscard]] std::vector<int> tensor_last_use(const Graph& graph);

/// Structural equality: op kinds, tensor wiring and conv/pool attributes
/// (weights and biases are ignored). Graphs lowered from the same
/// architecture — e.g. successive re-quantizations of one model — compare
/// equal, which is what lets an ExecPlan be reused across them.
[[nodiscard]] bool topology_equals(const Graph& a, const Graph& b);

/// Order-sensitive hash over exactly the structure topology_equals
/// compares (op kinds, wiring, conv/pool attributes; weights ignored).
/// topology_equals(a, b) implies equal fingerprints; the converse is a
/// hash collision, which callers (e.g. the exec plan cache) must resolve
/// with topology_equals.
[[nodiscard]] std::uint64_t topology_fingerprint(const Graph& graph);

}  // namespace raq::ir
