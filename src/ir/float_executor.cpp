#include "ir/float_executor.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exec/engine.hpp"
#include "tensor/gemm.hpp"

namespace raq::ir {

namespace {

tensor::Tensor conv_forward(const Op& op, const tensor::Tensor& in) {
    int oh = 0, ow = 0;
    std::vector<float> columns;
    tensor::im2col(in, op.conv.kh, op.conv.kw, op.conv.stride, op.conv.pad, columns, oh, ow);
    const std::size_t k = static_cast<std::size_t>(op.conv.in_c) *
                          static_cast<std::size_t>(op.conv.kh) *
                          static_cast<std::size_t>(op.conv.kw);
    const std::size_t cols = static_cast<std::size_t>(in.shape().n) *
                             static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    std::vector<float> product(static_cast<std::size_t>(op.conv.out_c) * cols);
    tensor::gemm(op.weights.data(), columns.data(), product.data(),
                 static_cast<std::size_t>(op.conv.out_c), k, cols);
    tensor::Tensor out({in.shape().n, op.conv.out_c, oh, ow});
    // product is [oc, n*oh*ow]; output layout is [n, oc, oh, ow].
    const std::size_t hw = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    for (int n = 0; n < in.shape().n; ++n)
        for (int oc = 0; oc < op.conv.out_c; ++oc) {
            const float b = op.bias[static_cast<std::size_t>(oc)];
            const float* src = product.data() + static_cast<std::size_t>(oc) * cols +
                               static_cast<std::size_t>(n) * hw;
            float* dst = out.data() +
                         (static_cast<std::size_t>(n) * static_cast<std::size_t>(op.conv.out_c) +
                          static_cast<std::size_t>(oc)) *
                             hw;
            for (std::size_t i = 0; i < hw; ++i) dst[i] = src[i] + b;
        }
    return out;
}

tensor::Tensor maxpool_forward(const Op& op, const tensor::Tensor& in) {
    const auto& s = in.shape();
    const int oh = tensor::conv_out_dim(s.h, op.pool.kernel, op.pool.stride, 0);
    const int ow = tensor::conv_out_dim(s.w, op.pool.kernel, op.pool.stride, 0);
    tensor::Tensor out({s.n, s.c, oh, ow});
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox) {
                    float best = -std::numeric_limits<float>::infinity();
                    for (int ky = 0; ky < op.pool.kernel; ++ky)
                        for (int kx = 0; kx < op.pool.kernel; ++kx) {
                            const int iy = oy * op.pool.stride + ky;
                            const int ix = ox * op.pool.stride + kx;
                            if (iy < s.h && ix < s.w) best = std::max(best, in.at(n, c, iy, ix));
                        }
                    out.at(n, c, oy, ox) = best;
                }
    return out;
}

/// The seed tree-walking interpreter. `eager_free` drops every
/// intermediate right after its last consumer (the input and the graph
/// output stay pinned); `visit` sees each tensor while it is live.
void walk(const Graph& graph, tensor::TensorView batch, bool eager_free,
          const std::function<void(int, const tensor::Tensor&)>& visit,
          std::vector<tensor::Tensor>* keep) {
    if (!(batch.shape.c == graph.input_shape().c && batch.shape.h == graph.input_shape().h &&
          batch.shape.w == graph.input_shape().w))
        throw std::invalid_argument("run_float: batch shape does not match graph input");

    const std::size_t num_tensors = static_cast<std::size_t>(graph.num_tensors());
    std::vector<int> remaining_uses(num_tensors, 0);
    if (eager_free)
        for (const Op& op : graph.ops())
            for (const int in : op.inputs) ++remaining_uses[static_cast<std::size_t>(in)];

    std::vector<tensor::Tensor> tensors(num_tensors);
    tensors[static_cast<std::size_t>(graph.input_id())] = tensor::Tensor(
        batch.shape, std::vector<float>(batch.data, batch.data + batch.size()));
    if (visit) visit(graph.input_id(), tensors[static_cast<std::size_t>(graph.input_id())]);

    for (const Op& op : graph.ops()) {
        tensor::Tensor out;
        if (op.kind == OpKind::Conv2d) {
            out = conv_forward(op, tensors[static_cast<std::size_t>(op.inputs.at(0))]);
        } else {
            std::vector<const tensor::Tensor*> ins;
            ins.reserve(op.inputs.size());
            for (int id : op.inputs) ins.push_back(&tensors[static_cast<std::size_t>(id)]);
            out = apply_nonconv_op(op, ins);
        }
        tensors[static_cast<std::size_t>(op.output)] = std::move(out);
        if (visit) visit(op.output, tensors[static_cast<std::size_t>(op.output)]);
        if (!eager_free) continue;
        for (const int in : op.inputs) {
            if (--remaining_uses[static_cast<std::size_t>(in)] > 0) continue;
            if (in == graph.input_id() || in == graph.output_id()) continue;
            tensors[static_cast<std::size_t>(in)] = tensor::Tensor{};  // release storage
        }
    }
    if (keep) *keep = std::move(tensors);
}

}  // namespace

tensor::Tensor apply_nonconv_op(const Op& op, const std::vector<const tensor::Tensor*>& ins) {
    const tensor::Tensor& in0 = *ins.at(0);
    switch (op.kind) {
        case OpKind::Conv2d:
            throw std::invalid_argument("apply_nonconv_op: conv not handled here");
        case OpKind::Relu: {
            tensor::Tensor out = in0;
            for (auto& v : out.vec()) v = v > 0 ? v : 0.0f;
            return out;
        }
        case OpKind::MaxPool2d:
            return maxpool_forward(op, in0);
        case OpKind::GlobalAvgPool: {
            const auto& s = in0.shape();
            tensor::Tensor out({s.n, s.c, 1, 1});
            const float inv = 1.0f / static_cast<float>(s.h * s.w);
            for (int n = 0; n < s.n; ++n)
                for (int c = 0; c < s.c; ++c) {
                    float acc = 0;
                    for (int y = 0; y < s.h; ++y)
                        for (int x = 0; x < s.w; ++x) acc += in0.at(n, c, y, x);
                    out.at(n, c, 0, 0) = acc * inv;
                }
            return out;
        }
        case OpKind::Add: {
            const tensor::Tensor& in1 = *ins.at(1);
            tensor::Tensor out = in0;
            for (std::size_t i = 0; i < out.size(); ++i) out[i] += in1[i];
            return out;
        }
        case OpKind::Concat: {
            const auto& s0 = in0.shape();
            int channels = 0;
            for (const tensor::Tensor* t : ins) channels += t->shape().c;
            tensor::Tensor out({s0.n, channels, s0.h, s0.w});
            const std::size_t hw =
                static_cast<std::size_t>(s0.h) * static_cast<std::size_t>(s0.w);
            for (int n = 0; n < s0.n; ++n) {
                std::size_t c_off = 0;
                for (const tensor::Tensor* t : ins) {
                    const std::size_t block = static_cast<std::size_t>(t->shape().c) * hw;
                    std::copy(t->data() + static_cast<std::size_t>(n) * block,
                              t->data() + static_cast<std::size_t>(n + 1) * block,
                              out.data() +
                                  (static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(channels)) *
                                      hw +
                                  c_off * hw);
                    c_off += static_cast<std::size_t>(t->shape().c);
                }
            }
            return out;
        }
    }
    throw std::invalid_argument("apply_nonconv_op: unknown op kind");
}

std::vector<tensor::Tensor> run_float_all(const Graph& graph, tensor::TensorView batch) {
    std::vector<tensor::Tensor> tensors;
    walk(graph, batch, /*eager_free=*/false, nullptr, &tensors);
    return tensors;
}

void for_each_float_tensor(const Graph& graph, tensor::TensorView batch,
                           const std::function<void(int, const tensor::Tensor&)>& visit) {
    walk(graph, batch, /*eager_free=*/true, visit, nullptr);
}

tensor::Tensor run_float(const Graph& graph, tensor::TensorView batch) {
    exec::FloatRunner runner(graph, batch.shape.n);
    return runner.run(batch);
}

std::vector<int> argmax_classes(const tensor::Tensor& logits) {
    const auto& s = logits.shape();
    std::vector<int> out(static_cast<std::size_t>(s.n));
    for (int n = 0; n < s.n; ++n) {
        int best = 0;
        float best_v = logits.at(n, 0, 0, 0);
        for (int c = 1; c < s.c; ++c) {
            const float v = logits.at(n, c, 0, 0);
            if (v > best_v) {
                best_v = v;
                best = c;
            }
        }
        out[static_cast<std::size_t>(n)] = best;
    }
    return out;
}

double float_accuracy(const Graph& graph, tensor::TensorView images,
                      const std::vector<int>& labels) {
    if (static_cast<std::size_t>(images.shape.n) != labels.size())
        throw std::invalid_argument("float_accuracy: label count mismatch");
    // Bounded batches keep the arena (and its im2col workspaces) small;
    // per-sample logits do not depend on batching, so the accuracy is
    // bit-identical to a single whole-set run.
    const int total = images.shape.n;
    const int batch_size = std::min(total, 128);
    exec::FloatRunner runner(graph, batch_size);
    std::size_t correct = 0;
    for (int start = 0; start < total; start += batch_size) {
        const int count = std::min(batch_size, total - start);
        const auto preds = argmax_classes(runner.run(images.batch_view(start, count)));
        for (int i = 0; i < count; ++i)
            correct += (preds[static_cast<std::size_t>(i)] ==
                        labels[static_cast<std::size_t>(start + i)]);
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace raq::ir
