// FP32 reference executor for the deployment IR. Serves three roles:
// baseline accuracy (the paper reports accuracy loss w.r.t. FP32
// inference), calibration-statistics collection (all intermediate tensors
// can be returned), and a cross-check for the quantized executor.
#pragma once

#include <vector>

#include "ir/graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::ir {

/// Run the graph on a batch and return the output tensor (logits).
[[nodiscard]] tensor::Tensor run_float(const Graph& graph, const tensor::Tensor& batch);

/// Apply a single non-convolution op in float. Shared with the quantized
/// executor, which only re-implements the integer MAC path.
[[nodiscard]] tensor::Tensor apply_nonconv_op(const Op& op,
                                              const std::vector<const tensor::Tensor*>& ins);

/// Run and return every intermediate tensor, indexed by tensor id.
[[nodiscard]] std::vector<tensor::Tensor> run_float_all(const Graph& graph,
                                                        const tensor::Tensor& batch);

/// Argmax class per sample from (N, classes, 1, 1) logits.
[[nodiscard]] std::vector<int> argmax_classes(const tensor::Tensor& logits);

/// Top-1 accuracy of the graph on (images, labels).
[[nodiscard]] double float_accuracy(const Graph& graph, const tensor::Tensor& images,
                                    const std::vector<int>& labels);

}  // namespace raq::ir
