// FP32 execution of the deployment IR. Serves three roles: baseline
// accuracy (the paper reports accuracy loss w.r.t. FP32 inference),
// calibration-statistics collection, and the reference for the planned
// execution engine (src/exec/), which run_float and float_accuracy are
// thin wrappers over.
//
// run_float_all / for_each_float_tensor keep the seed's tree-walking
// interpreter: it materialises real Tensors per op, bypasses the exec
// arena planner, and is retained as the independent bit-identity
// reference and for whole-graph diagnostics.
#pragma once

#include <functional>
#include <vector>

#include "ir/graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::ir {

/// Run the graph on a batch and return the output tensor (logits).
/// Thin wrapper over the planned engine (see exec::FloatRunner for the
/// reusable-state form used in loops).
[[nodiscard]] tensor::Tensor run_float(const Graph& graph, tensor::TensorView batch);

/// Apply a single non-convolution op in float (reference walker path).
[[nodiscard]] tensor::Tensor apply_nonconv_op(const Op& op,
                                              const std::vector<const tensor::Tensor*>& ins);

/// Reference walker: run and return every intermediate tensor, indexed by
/// tensor id. Keeps the whole live set — use for_each_float_tensor when
/// tensors are only inspected once.
[[nodiscard]] std::vector<tensor::Tensor> run_float_all(const Graph& graph,
                                                        tensor::TensorView batch);

/// Reference walker with eager tensor lifetime: visits the input and
/// every op output in topological order, dropping each intermediate right
/// after its last consumer ran. Peak memory is the live-set maximum even
/// though this path bypasses the exec arena planner.
void for_each_float_tensor(const Graph& graph, tensor::TensorView batch,
                           const std::function<void(int, const tensor::Tensor&)>& visit);

/// Argmax class per sample from (N, classes, 1, 1) logits.
[[nodiscard]] std::vector<int> argmax_classes(const tensor::Tensor& logits);

/// Top-1 accuracy of the graph on (images, labels). Evaluates in batched
/// zero-copy slices through the planned engine; per-sample results (and
/// therefore the accuracy) are bit-identical to one whole-set run.
[[nodiscard]] double float_accuracy(const Graph& graph, tensor::TensorView images,
                                    const std::vector<int>& labels);

}  // namespace raq::ir
