#include "ir/partition.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace raq::ir {

namespace {

/// Per-tensor producing op index (-1 for the graph input).
std::vector<int> compute_producer(const Graph& graph) {
    std::vector<int> producer(static_cast<std::size_t>(graph.num_tensors()), -1);
    const auto& ops = graph.ops();
    for (std::size_t i = 0; i < ops.size(); ++i)
        producer[static_cast<std::size_t>(ops[i].output)] = static_cast<int>(i);
    return producer;
}

std::vector<std::uint64_t> mac_costs(const Graph& graph) {
    const auto shapes = infer_shapes(graph, 1);
    std::vector<std::uint64_t> costs(graph.ops().size(), 0);
    const auto& ops = graph.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind != OpKind::Conv2d) continue;
        const tensor::Shape& out = shapes[static_cast<std::size_t>(ops[i].output)];
        costs[i] = static_cast<std::uint64_t>(out.c) * static_cast<std::uint64_t>(out.h) *
                   static_cast<std::uint64_t>(out.w) *
                   static_cast<std::uint64_t>(ops[i].conv.in_c) *
                   static_cast<std::uint64_t>(ops[i].conv.kh) *
                   static_cast<std::uint64_t>(ops[i].conv.kw);
    }
    return costs;
}

}  // namespace

std::vector<int> cut_candidates(const Graph& graph) {
    if (graph.output_id() < 0) throw std::invalid_argument("cut_candidates: graph has no output");
    const auto& ops = graph.ops();
    // The graph output must always reach the final shard: pin it live.
    std::vector<int> last_use = tensor_last_use(graph);
    last_use[static_cast<std::size_t>(graph.output_id())] = std::numeric_limits<int>::max();
    const std::vector<int> producer = compute_producer(graph);

    std::vector<int> cuts;
    // A cut after the last op is not a cut (the second side would be
    // empty), so i ranges over [0, ops-2].
    for (int i = 0; i + 1 < static_cast<int>(ops.size()); ++i) {
        int crossing = 0;
        bool only_own_output = true;
        for (int t = 0; t < graph.num_tensors(); ++t) {
            if (producer[static_cast<std::size_t>(t)] > i) continue;  // born downstream
            if (last_use[static_cast<std::size_t>(t)] <= i) continue; // dead at the cut
            ++crossing;
            if (t != ops[static_cast<std::size_t>(i)].output) only_own_output = false;
        }
        if (crossing == 1 && only_own_output) cuts.push_back(i);
    }
    return cuts;
}

std::vector<ShardSpec> partition_graph(const Graph& graph, int num_shards,
                                       const std::vector<std::uint64_t>& op_costs) {
    const auto& ops = graph.ops();
    if (num_shards < 1) throw std::invalid_argument("partition_graph: num_shards must be >= 1");
    if (ops.empty()) throw std::invalid_argument("partition_graph: empty graph");
    std::vector<std::uint64_t> costs = op_costs.empty() ? mac_costs(graph) : op_costs;
    if (costs.size() != ops.size())
        throw std::invalid_argument("partition_graph: op_costs size does not match op count");

    std::vector<std::uint64_t> prefix(ops.size() + 1, 0);
    for (std::size_t i = 0; i < ops.size(); ++i) prefix[i + 1] = prefix[i] + costs[i];
    const auto range_cost = [&](int first, int last) {  // inclusive op range
        return prefix[static_cast<std::size_t>(last) + 1] - prefix[static_cast<std::size_t>(first)];
    };

    const std::vector<int> cands = cut_candidates(graph);
    const int needed = num_shards - 1;
    if (static_cast<int>(cands.size()) < needed)
        throw std::invalid_argument(
            "partition_graph: graph admits only " + std::to_string(cands.size()) +
            " single-tensor cut(s); cannot make " + std::to_string(num_shards) + " shards");

    // Min-bottleneck DP over cut positions: dp[k][c] is the best possible
    // maximum shard cost when ops [0 .. cands[c]] are split into k+1
    // shards ending with a cut at cands[c].
    const int nc = static_cast<int>(cands.size());
    constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
    std::vector<int> chosen_cuts;
    if (needed > 0) {
        std::vector<std::vector<std::uint64_t>> dp(
            static_cast<std::size_t>(needed), std::vector<std::uint64_t>(cands.size(), kInf));
        std::vector<std::vector<int>> parent(
            static_cast<std::size_t>(needed), std::vector<int>(cands.size(), -1));
        // Zero-cost segments are rejected: every shard must carry MAC
        // work (a conv-free shard would waste a device, and the systolic
        // cycle model has nothing to say about it).
        for (int c = 0; c < nc; ++c) {
            const std::uint64_t seg = range_cost(0, cands[static_cast<std::size_t>(c)]);
            if (seg > 0) dp[0][static_cast<std::size_t>(c)] = seg;
        }
        for (int k = 1; k < needed; ++k) {
            for (int c = k; c < nc; ++c) {
                for (int p = k - 1; p < c; ++p) {
                    if (dp[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(p)] == kInf) continue;
                    const std::uint64_t seg =
                        range_cost(cands[static_cast<std::size_t>(p)] + 1, cands[static_cast<std::size_t>(c)]);
                    if (seg == 0) continue;
                    const std::uint64_t bottleneck =
                        std::max(dp[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(p)], seg);
                    if (bottleneck < dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)]) {
                        dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)] = bottleneck;
                        parent[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)] = p;
                    }
                }
            }
        }
        // Close with the tail shard (last cut .. last op).
        std::uint64_t best = kInf;
        int best_c = -1;
        for (int c = needed - 1; c < nc; ++c) {
            if (dp[static_cast<std::size_t>(needed - 1)][static_cast<std::size_t>(c)] == kInf) continue;
            const std::uint64_t tail =
                range_cost(cands[static_cast<std::size_t>(c)] + 1, static_cast<int>(ops.size()) - 1);
            if (tail == 0) continue;
            const std::uint64_t bottleneck =
                std::max(dp[static_cast<std::size_t>(needed - 1)][static_cast<std::size_t>(c)], tail);
            if (bottleneck < best) {
                best = bottleneck;
                best_c = c;
            }
        }
        if (best_c < 0)
            throw std::invalid_argument(
                "partition_graph: no cut assigns every one of the " +
                std::to_string(num_shards) + " shards a nonzero cost");
        chosen_cuts.resize(static_cast<std::size_t>(needed));
        int c = best_c;
        for (int k = needed - 1; k >= 0; --k) {
            chosen_cuts[static_cast<std::size_t>(k)] = cands[static_cast<std::size_t>(c)];
            c = parent[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)];
        }
    }

    const std::vector<int> levels = op_levels(graph);
    std::vector<ShardSpec> shards;
    shards.reserve(static_cast<std::size_t>(num_shards));
    int first = 0;
    for (int k = 0; k < num_shards; ++k) {
        const int last = k < needed ? chosen_cuts[static_cast<std::size_t>(k)]
                                    : static_cast<int>(ops.size()) - 1;
        ShardSpec spec;
        spec.first_op = first;
        spec.last_op = last;
        spec.input_tensor = first == 0 ? graph.input_id()
                                       : ops[static_cast<std::size_t>(first - 1)].output;
        spec.output_tensor = ops[static_cast<std::size_t>(last)].output;
        spec.first_level = levels[static_cast<std::size_t>(first)];
        spec.last_level = levels[static_cast<std::size_t>(first)];
        for (int i = first; i <= last; ++i) {
            spec.first_level = std::min(spec.first_level, levels[static_cast<std::size_t>(i)]);
            spec.last_level = std::max(spec.last_level, levels[static_cast<std::size_t>(i)]);
        }
        spec.cost = range_cost(first, last);
        shards.push_back(spec);
        first = last + 1;
    }
    return shards;
}

Subgraph extract_subgraph(const Graph& graph, const ShardSpec& spec) {
    const auto& ops = graph.ops();
    if (spec.first_op < 0 || spec.last_op >= static_cast<int>(ops.size()) ||
        spec.first_op > spec.last_op)
        throw std::invalid_argument("extract_subgraph: op range out of bounds");
    const auto shapes = infer_shapes(graph, 1);

    Subgraph out;
    std::vector<int> sub_id(static_cast<std::size_t>(graph.num_tensors()), -1);
    const int in_id =
        out.graph.add_input(shapes[static_cast<std::size_t>(spec.input_tensor)]);
    sub_id[static_cast<std::size_t>(spec.input_tensor)] = in_id;
    out.full_tensor_of.push_back(spec.input_tensor);

    for (int i = spec.first_op; i <= spec.last_op; ++i) {
        Op op = ops[static_cast<std::size_t>(i)];  // copy incl. weights/bias
        for (int& in : op.inputs) {
            const int mapped = sub_id[static_cast<std::size_t>(in)];
            if (mapped < 0)
                throw std::logic_error(
                    "extract_subgraph: op '" + op.name +
                    "' consumes a tensor outside the shard — not a single-tensor cut");
            in = mapped;
        }
        const int full_out = ops[static_cast<std::size_t>(i)].output;
        const int mapped_out = out.graph.add(std::move(op));
        sub_id[static_cast<std::size_t>(full_out)] = mapped_out;
        out.full_tensor_of.push_back(full_out);
    }

    const int mapped_output = sub_id[static_cast<std::size_t>(spec.output_tensor)];
    if (mapped_output < 0)
        throw std::logic_error("extract_subgraph: shard output tensor not produced in range");
    out.graph.set_output(mapped_output);
    return out;
}

}  // namespace raq::ir
