#include "ir/partition.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "npu/systolic.hpp"

namespace raq::ir {

namespace {

/// The shared min-bottleneck DP: `stage_costs[k]` prices stage k's
/// segment (homogeneous callers pass the same table for every stage).
std::vector<ShardSpec> partition_impl(
    const Graph& graph, const std::vector<const std::vector<std::uint64_t>*>& stage_costs) {
    const auto& ops = graph.ops();
    const int num_shards = static_cast<int>(stage_costs.size());
    if (num_shards < 1) throw std::invalid_argument("partition_graph: num_shards must be >= 1");
    if (ops.empty()) throw std::invalid_argument("partition_graph: empty graph");
    for (const auto* costs : stage_costs)
        if (costs->size() != ops.size())
            throw std::invalid_argument(
                "partition_graph: op_costs size does not match op count");

    // One prefix-sum row per stage: segment cost depends on which
    // device's table the stage is priced with.
    std::vector<std::vector<std::uint64_t>> prefix(
        static_cast<std::size_t>(num_shards), std::vector<std::uint64_t>(ops.size() + 1, 0));
    for (int k = 0; k < num_shards; ++k) {
        const std::vector<std::uint64_t>& costs = *stage_costs[static_cast<std::size_t>(k)];
        for (std::size_t i = 0; i < ops.size(); ++i)
            prefix[static_cast<std::size_t>(k)][i + 1] =
                prefix[static_cast<std::size_t>(k)][i] + costs[i];
    }
    const auto range_cost = [&](int stage, int first, int last) {  // inclusive op range
        const auto& row = prefix[static_cast<std::size_t>(stage)];
        return row[static_cast<std::size_t>(last) + 1] - row[static_cast<std::size_t>(first)];
    };

    const std::vector<int> cands = cut_candidates(graph);
    const int needed = num_shards - 1;
    if (static_cast<int>(cands.size()) < needed)
        throw std::invalid_argument(
            "partition_graph: graph admits only " + std::to_string(cands.size()) +
            " single-tensor cut(s); cannot make " + std::to_string(num_shards) + " shards");

    // Min-bottleneck DP over cut positions: dp[k][c] is the best possible
    // maximum shard cost when ops [0 .. cands[c]] are split into k+1
    // shards ending with a cut at cands[c], with shard j priced on stage
    // j's cost table.
    const int nc = static_cast<int>(cands.size());
    constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
    std::vector<int> chosen_cuts;
    if (needed > 0) {
        std::vector<std::vector<std::uint64_t>> dp(
            static_cast<std::size_t>(needed), std::vector<std::uint64_t>(cands.size(), kInf));
        std::vector<std::vector<int>> parent(
            static_cast<std::size_t>(needed), std::vector<int>(cands.size(), -1));
        // Zero-cost segments are rejected: every shard must carry MAC
        // work (a conv-free shard would waste a device, and the systolic
        // cycle model has nothing to say about it).
        for (int c = 0; c < nc; ++c) {
            const std::uint64_t seg = range_cost(0, 0, cands[static_cast<std::size_t>(c)]);
            if (seg > 0) dp[0][static_cast<std::size_t>(c)] = seg;
        }
        for (int k = 1; k < needed; ++k) {
            for (int c = k; c < nc; ++c) {
                for (int p = k - 1; p < c; ++p) {
                    if (dp[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(p)] == kInf) continue;
                    const std::uint64_t seg = range_cost(
                        k, cands[static_cast<std::size_t>(p)] + 1, cands[static_cast<std::size_t>(c)]);
                    if (seg == 0) continue;
                    const std::uint64_t bottleneck =
                        std::max(dp[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(p)], seg);
                    if (bottleneck < dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)]) {
                        dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)] = bottleneck;
                        parent[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)] = p;
                    }
                }
            }
        }
        // Close with the tail shard (last cut .. last op).
        std::uint64_t best = kInf;
        int best_c = -1;
        for (int c = needed - 1; c < nc; ++c) {
            if (dp[static_cast<std::size_t>(needed - 1)][static_cast<std::size_t>(c)] == kInf) continue;
            const std::uint64_t tail = range_cost(
                needed, cands[static_cast<std::size_t>(c)] + 1, static_cast<int>(ops.size()) - 1);
            if (tail == 0) continue;
            const std::uint64_t bottleneck =
                std::max(dp[static_cast<std::size_t>(needed - 1)][static_cast<std::size_t>(c)], tail);
            if (bottleneck < best) {
                best = bottleneck;
                best_c = c;
            }
        }
        if (best_c < 0)
            throw std::invalid_argument(
                "partition_graph: no cut assigns every one of the " +
                std::to_string(num_shards) + " shards a nonzero cost");
        chosen_cuts.resize(static_cast<std::size_t>(needed));
        int c = best_c;
        for (int k = needed - 1; k >= 0; --k) {
            chosen_cuts[static_cast<std::size_t>(k)] = cands[static_cast<std::size_t>(c)];
            c = parent[static_cast<std::size_t>(k)][static_cast<std::size_t>(c)];
        }
    }

    const std::vector<int> levels = op_levels(graph);
    std::vector<ShardSpec> shards;
    shards.reserve(static_cast<std::size_t>(num_shards));
    int first = 0;
    for (int k = 0; k < num_shards; ++k) {
        const int last = k < needed ? chosen_cuts[static_cast<std::size_t>(k)]
                                    : static_cast<int>(ops.size()) - 1;
        ShardSpec spec;
        spec.first_op = first;
        spec.last_op = last;
        spec.input_tensor = first == 0 ? graph.input_id()
                                       : ops[static_cast<std::size_t>(first - 1)].output;
        spec.output_tensor = ops[static_cast<std::size_t>(last)].output;
        spec.first_level = levels[static_cast<std::size_t>(first)];
        spec.last_level = levels[static_cast<std::size_t>(first)];
        for (int i = first; i <= last; ++i) {
            spec.first_level = std::min(spec.first_level, levels[static_cast<std::size_t>(i)]);
            spec.last_level = std::max(spec.last_level, levels[static_cast<std::size_t>(i)]);
        }
        spec.cost = range_cost(k, first, last);
        shards.push_back(spec);
        first = last + 1;
    }
    return shards;
}

}  // namespace

std::vector<int> cut_candidates(const Graph& graph) {
    if (graph.output_id() < 0) throw std::invalid_argument("cut_candidates: graph has no output");
    const auto& ops = graph.ops();
    const int num_ops = static_cast<int>(ops.size());
    // The graph output must always reach the final shard: pin it live.
    std::vector<int> last_use = tensor_last_use(graph);
    last_use[static_cast<std::size_t>(graph.output_id())] = std::numeric_limits<int>::max();

    // Single liveness sweep, O(ops + tensors): walking the schedule, the
    // number of tensors crossing boundary i is the running live count
    // after op i's output is born and everything op i last-consumed has
    // died. Tensors never consumed (and not the pinned output) are never
    // live past their producer; the graph input (producer -1) seeds the
    // count. Because a tensor's last use is strictly after its producer,
    // births and deaths at one op never cancel ambiguously.
    std::vector<int> deaths_at(ops.size(), 0);
    for (int t = 0; t < graph.num_tensors(); ++t) {
        const int die = last_use[static_cast<std::size_t>(t)];
        if (die >= 0 && die < num_ops) ++deaths_at[static_cast<std::size_t>(die)];
    }

    std::vector<int> cuts;
    int live = last_use[static_cast<std::size_t>(graph.input_id())] >= 0 ? 1 : 0;
    // A cut after the last op is not a cut (the second side would be
    // empty), so candidates range over [0, ops-2].
    for (int i = 0; i < num_ops; ++i) {
        const int out = ops[static_cast<std::size_t>(i)].output;
        const bool own_output_live = last_use[static_cast<std::size_t>(out)] > i;
        if (own_output_live) ++live;
        live -= deaths_at[static_cast<std::size_t>(i)];
        if (i + 1 < num_ops && live == 1 && own_output_live) cuts.push_back(i);
    }
    return cuts;
}

std::vector<ShardSpec> partition_graph(const Graph& graph, int num_shards,
                                       const std::vector<std::uint64_t>& op_costs) {
    if (num_shards < 1) throw std::invalid_argument("partition_graph: num_shards must be >= 1");
    // Default cost model: systolic per-layer cycles (tiling and array
    // utilization included) at the default array config — the quantity
    // the pipeline actually spends per stage. Raw MACs would price a
    // low-utilization layer (small reduction dim, pipeline-fill-bound)
    // far below its real residency.
    const std::vector<std::uint64_t> costs =
        op_costs.empty() ? npu::op_cycle_costs(graph) : op_costs;
    const std::vector<const std::vector<std::uint64_t>*> stage_costs(
        static_cast<std::size_t>(num_shards), &costs);
    return partition_impl(graph, stage_costs);
}

std::vector<ShardSpec> partition_graph_heterogeneous(
    const Graph& graph, const std::vector<std::vector<std::uint64_t>>& per_stage_costs) {
    if (per_stage_costs.empty())
        throw std::invalid_argument("partition_graph_heterogeneous: no stage cost tables");
    std::vector<const std::vector<std::uint64_t>*> stage_costs;
    stage_costs.reserve(per_stage_costs.size());
    for (const auto& costs : per_stage_costs) stage_costs.push_back(&costs);
    return partition_impl(graph, stage_costs);
}

Subgraph extract_subgraph(const Graph& graph, const ShardSpec& spec) {
    const auto& ops = graph.ops();
    if (spec.first_op < 0 || spec.last_op >= static_cast<int>(ops.size()) ||
        spec.first_op > spec.last_op)
        throw std::invalid_argument("extract_subgraph: op range out of bounds");
    const auto shapes = infer_shapes(graph, 1);

    Subgraph out;
    std::vector<int> sub_id(static_cast<std::size_t>(graph.num_tensors()), -1);
    const int in_id =
        out.graph.add_input(shapes[static_cast<std::size_t>(spec.input_tensor)]);
    sub_id[static_cast<std::size_t>(spec.input_tensor)] = in_id;
    out.full_tensor_of.push_back(spec.input_tensor);

    for (int i = spec.first_op; i <= spec.last_op; ++i) {
        Op op = ops[static_cast<std::size_t>(i)];  // copy incl. weights/bias
        for (int& in : op.inputs) {
            const int mapped = sub_id[static_cast<std::size_t>(in)];
            if (mapped < 0)
                throw std::logic_error(
                    "extract_subgraph: op '" + op.name +
                    "' consumes a tensor outside the shard — not a single-tensor cut");
            in = mapped;
        }
        const int full_out = ops[static_cast<std::size_t>(i)].output;
        const int mapped_out = out.graph.add(std::move(op));
        sub_id[static_cast<std::size_t>(full_out)] = mapped_out;
        out.full_tensor_of.push_back(full_out);
    }

    const int mapped_output = sub_id[static_cast<std::size_t>(spec.output_tensor)];
    if (mapped_output < 0)
        throw std::logic_error("extract_subgraph: shard output tensor not produced in range");
    out.graph.set_output(mapped_output);
    return out;
}

}  // namespace raq::ir
