// Graph-cut partitioning for cross-device model sharding.
//
// A shard is a contiguous range of the topological op schedule whose
// boundary with the next shard is a *single* tensor: everything the
// downstream ops need from upstream flows through that one cut tensor,
// so each shard is a self-contained single-input single-output Graph and
// a pipeline of shards is semantically identical to the whole model.
// Residual/branching regions (an Add or Concat whose operands are both
// in flight) admit no cut inside them — cut candidates sit exactly at
// the dependency-level frontiers where the live set collapses to one
// tensor, which for chain-style models is every op boundary and for
// residual models the block boundaries.
//
// partition_graph() picks the cuts that minimize the maximum per-shard
// cost (the pipeline bottleneck): with per-op systolic cycle costs this
// balances the shards so a device pipeline sustains close to the
// replicated fleet's throughput at equal device count.
// partition_graph_heterogeneous() generalizes the same min-bottleneck DP
// to one cost table per pipeline stage: stage k's segment is priced with
// device k's table (its systolic cycle model scaled by its aged clock
// period), so the cut balances real per-stage pipeline time across
// devices that age — and run — at different rates.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"

namespace raq::ir {

/// One shard of a partitioned graph: a contiguous op range of the full
/// graph plus its boundary metadata (all ids refer to the FULL graph).
struct ShardSpec {
    int first_op = 0;      ///< first op index, inclusive
    int last_op = 0;       ///< last op index, inclusive
    int input_tensor = 0;  ///< the one tensor feeding this shard (graph input for shard 0)
    int output_tensor = 0; ///< the one tensor this shard produces (graph output for the last)
    int first_level = 0;   ///< smallest dependency level among the shard's ops
    int last_level = 0;    ///< largest dependency level among the shard's ops
    std::uint64_t cost = 0; ///< summed per-op cost on the assigned stage's table
};

/// All valid cut points: op indices i such that the only tensor crossing
/// from ops [0..i] to ops [i+1..) (or to the graph output) is
/// ops[i].output. Cutting anywhere else would strand a second live
/// tensor (e.g. a residual skip) on the wrong side of the boundary.
/// Single O(ops + tensors) liveness sweep.
[[nodiscard]] std::vector<int> cut_candidates(const Graph& graph);

/// Partition the graph into `num_shards` contiguous op ranges at
/// single-tensor cut boundaries, minimizing the maximum per-shard cost.
/// `op_costs` (one entry per op index) weights the balance — pass the
/// systolic per-layer cycle counts for pipeline-bottleneck balance;
/// empty defaults to exactly that: npu::SystolicArrayModel cycles at the
/// default array config (tiling and utilization included), which is what
/// the serving pipeline actually executes — NOT raw MACs, which ignore
/// array utilization and price pool/relu-only regions at zero. Every
/// shard must end up with nonzero cost (a conv-free shard would waste a
/// device). Throws std::invalid_argument when the graph has fewer cut
/// points than `num_shards - 1` or no zero-cost-free assignment exists.
[[nodiscard]] std::vector<ShardSpec> partition_graph(
    const Graph& graph, int num_shards, const std::vector<std::uint64_t>& op_costs = {});

/// Heterogeneous pipeline cut: `per_stage_costs[k]` is the per-op cost
/// table of the device that will run stage k (one entry per op index —
/// e.g. its systolic cycle count scaled by its aged clock period, so the
/// balance reflects per-stage pipeline *time*, not fresh cycle counts).
/// The number of shards is `per_stage_costs.size()`; stage k's segment
/// cost — including the rejection of zero-cost shards and the reported
/// ShardSpec::cost — is evaluated on table k. The same min-bottleneck DP
/// as partition_graph (which is the special case of one shared table).
[[nodiscard]] std::vector<ShardSpec> partition_graph_heterogeneous(
    const Graph& graph, const std::vector<std::vector<std::uint64_t>>& per_stage_costs);

/// A shard extracted as a self-contained Graph with remapped tensor ids.
struct Subgraph {
    Graph graph;
    /// Sub-graph tensor id -> full-graph tensor id (index 0 is the shard
    /// input). Used to slice per-tensor metadata (calibration stats).
    std::vector<int> full_tensor_of;
};

/// Materialize one shard as its own Graph: the cut tensor becomes the
/// sub-graph input (shape from whole-graph inference at batch 1), ops
/// are copied with inputs remapped, and the shard's boundary tensor
/// becomes the sub-graph output. Conv weights/biases are copied so the
/// sub-graph is self-contained (quantizable and executable on its own).
[[nodiscard]] Subgraph extract_subgraph(const Graph& graph, const ShardSpec& spec);

}  // namespace raq::ir
