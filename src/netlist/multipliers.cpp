#include <stdexcept>

#include "netlist/builders.hpp"
#include "netlist/gates_util.hpp"

namespace raq::netlist {

using detail::full_adder;
using detail::g_and;
using detail::half_adder;

const char* multiplier_name(MultiplierKind kind) {
    switch (kind) {
        case MultiplierKind::Array: return "array";
        case MultiplierKind::Wallace: return "wallace";
    }
    return "?";
}

namespace {

/// Partial products pp[i][j] = a[j] & b[i], weight i + j.
std::vector<std::vector<NetId>> partial_products(Netlist& nl, const std::vector<NetId>& a,
                                                 const std::vector<NetId>& b) {
    std::vector<std::vector<NetId>> pp(b.size(), std::vector<NetId>(a.size()));
    for (std::size_t i = 0; i < b.size(); ++i)
        for (std::size_t j = 0; j < a.size(); ++j) pp[i][j] = g_and(nl, a[j], b[i]);
    return pp;
}

/// Array multiplier: row-by-row carry-save accumulation with a final
/// ripple merge — the classic slow structure (delay grows linearly in both
/// operand widths), matching what the paper calls "the very slow ...
/// array multiplier" of [10].
std::vector<NetId> build_array(Netlist& nl, const std::vector<NetId>& a,
                               const std::vector<NetId>& b) {
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const auto pp = partial_products(nl, a, b);

    // Running sum bits of weight w are kept in `sum`; carries ripple
    // through the rows in carry-save form.
    std::vector<NetId> product(n + m, kNoNet);
    std::vector<NetId> row_sum(pp[0]);     // weights i..i+n-1 for row i
    std::vector<NetId> row_carry(n, kNoNet);

    product[0] = row_sum[0];
    for (std::size_t i = 1; i < m; ++i) {
        std::vector<NetId> next_sum(n, kNoNet);
        std::vector<NetId> next_carry(n, kNoNet);
        for (std::size_t j = 0; j < n; ++j) {
            // Bit of weight i + j: add pp[i][j], the aligned previous-row
            // sum (weight i + j came from row i-1 position j + 1) and the
            // previous-row carry of position j.
            const NetId prev_sum = (j + 1 < n) ? row_sum[j + 1] : kNoNet;
            const NetId prev_carry = row_carry[j];
            if (prev_sum == kNoNet && prev_carry == kNoNet) {
                next_sum[j] = pp[i][j];
            } else if (prev_sum == kNoNet || prev_carry == kNoNet) {
                const NetId other = (prev_sum == kNoNet) ? prev_carry : prev_sum;
                const auto hc = half_adder(nl, pp[i][j], other);
                next_sum[j] = hc.sum;
                next_carry[j] = hc.carry;
            } else {
                const auto fc = full_adder(nl, pp[i][j], prev_sum, prev_carry);
                next_sum[j] = fc.sum;
                next_carry[j] = fc.carry;
            }
        }
        product[i] = next_sum[0];
        row_sum = std::move(next_sum);
        row_carry = std::move(next_carry);
    }

    // Vector-merge row: ripple-add the remaining sums and carries.
    NetId carry = kNoNet;
    for (std::size_t j = 1; j < n; ++j) {
        const NetId s = row_sum[j];
        const NetId c = row_carry[j - 1];
        if (carry == kNoNet) {
            const auto hc = half_adder(nl, s, c);
            product[m - 1 + j] = hc.sum;
            carry = hc.carry;
        } else {
            const auto fc = full_adder(nl, s, c, carry);
            product[m - 1 + j] = fc.sum;
            carry = fc.carry;
        }
    }
    // Top bit of weight n+m-1: the merge ripple carry (the top column never
    // receives an adder of its own — row_carry[n-1] is structurally absent).
    {
        const NetId c = row_carry[n - 1];
        if (c == kNoNet) {
            product[n + m - 1] = (carry == kNoNet) ? nl.const_zero() : carry;
        } else if (carry == kNoNet) {
            product[n + m - 1] = c;
        } else {
            // A carry beyond bit n+m-1 is arithmetically impossible, so a
            // plain XOR suffices (no dead carry gate).
            product[n + m - 1] = detail::g_xor(nl, c, carry);
        }
    }
    return product;
}

/// Wallace-tree multiplier: column-wise 3:2 carry-save reduction down to
/// two rows, then a fast carry-propagate final adder. This is the
/// DesignWare-class, max-performance structure.
std::vector<NetId> build_wallace(Netlist& nl, const std::vector<NetId>& a,
                                 const std::vector<NetId>& b, AdderKind final_adder) {
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    const std::size_t width = n + m;
    const auto pp = partial_products(nl, a, b);

    std::vector<std::vector<NetId>> columns(width);
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) columns[i + j].push_back(pp[i][j]);

    auto too_tall = [&] {
        for (const auto& col : columns)
            if (col.size() > 2) return true;
        return false;
    };

    while (too_tall()) {
        std::vector<std::vector<NetId>> next(width);
        for (std::size_t k = 0; k < width; ++k) {
            const auto& col = columns[k];
            std::size_t i = 0;
            while (col.size() - i >= 3) {
                const auto fc = full_adder(nl, col[i], col[i + 1], col[i + 2]);
                next[k].push_back(fc.sum);
                if (k + 1 < width) next[k + 1].push_back(fc.carry);
                i += 3;
            }
            if (col.size() - i == 2 && col.size() > 2) {
                // Column still congested: compress the leftover pair too.
                const auto hc = half_adder(nl, col[i], col[i + 1]);
                next[k].push_back(hc.sum);
                if (k + 1 < width) next[k + 1].push_back(hc.carry);
                i += 2;
            }
            for (; i < col.size(); ++i) next[k].push_back(col[i]);
        }
        columns = std::move(next);
    }

    // Final carry-propagate addition of the two remaining rows.
    std::vector<NetId> row_a(width), row_b(width);
    for (std::size_t k = 0; k < width; ++k) {
        row_a[k] = columns[k].empty() ? nl.const_zero() : columns[k][0];
        row_b[k] = columns[k].size() > 1 ? columns[k][1] : nl.const_zero();
    }
    auto res = build_adder(nl, final_adder, row_a, row_b);
    return res.sum;  // carry beyond 2n bits cannot occur
}

}  // namespace

std::vector<NetId> build_multiplier(Netlist& nl, MultiplierKind kind,
                                    const std::vector<NetId>& a,
                                    const std::vector<NetId>& b, AdderKind final_adder) {
    if (a.size() < 2 || b.size() < 2)
        throw std::invalid_argument("build_multiplier: operands must be at least 2 bits");
    switch (kind) {
        case MultiplierKind::Array: return build_array(nl, a, b);
        case MultiplierKind::Wallace: return build_wallace(nl, a, b, final_adder);
    }
    throw std::invalid_argument("build_multiplier: unknown kind");
}

Netlist build_multiplier_circuit(int width, MultiplierKind kind, AdderKind final_adder) {
    if (width < 2) throw std::invalid_argument("build_multiplier_circuit: width < 2");
    Netlist nl;
    const auto a = nl.add_input_bus("A", width);
    const auto b = nl.add_input_bus("B", width);
    const auto p = build_multiplier(nl, kind, a, b, final_adder);
    nl.mark_output_bus("P", p);
    return nl;
}

}  // namespace raq::netlist
