// Gate-level netlist: nets, gates, named buses, topological order and a
// bit-parallel functional simulator (64 vectors per evaluation).
//
// This is the common substrate consumed by the STA engine (src/sta) and
// the event-driven timing simulator (src/sim).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include "common/span.hpp"
#include <string>
#include <vector>

#include "cell/cell.hpp"

namespace raq::netlist {

using NetId = std::int32_t;
inline constexpr NetId kNoNet = -1;

struct Gate {
    cell::CellType type = cell::CellType::Inv;
    std::array<NetId, 3> inputs{kNoNet, kNoNet, kNoNet};
    NetId output = kNoNet;

    [[nodiscard]] int num_inputs() const { return cell::num_inputs(type); }
};

/// A netlist under construction or analysis. Gates must be added after all
/// of their input nets exist; generators therefore naturally emit gates in
/// topological order, which the class verifies.
class Netlist {
public:
    Netlist() = default;

    // --- construction -----------------------------------------------------
    NetId add_net(std::string name = {});
    NetId add_primary_input(const std::string& name);
    void mark_primary_output(NetId net, const std::string& name);

    /// Constant nets (lazily created; no driver, fixed logic value).
    NetId const_zero();
    NetId const_one();

    /// Add a gate; returns its output net (freshly created).
    NetId add_gate(cell::CellType type, common::Span<const NetId> inputs,
                   std::string output_name = {});
    NetId add_gate(cell::CellType type, std::initializer_list<NetId> inputs,
                   std::string output_name = {}) {
        return add_gate(type, common::Span<const NetId>(inputs.begin(), inputs.size()),
                        std::move(output_name));
    }

    /// Named bus helpers (bit 0 = LSB).
    std::vector<NetId> add_input_bus(const std::string& name, int width);
    void mark_output_bus(const std::string& name, const std::vector<NetId>& bits);
    [[nodiscard]] const std::vector<NetId>& input_bus(const std::string& name) const;
    [[nodiscard]] const std::vector<NetId>& output_bus(const std::string& name) const;
    [[nodiscard]] bool has_bus(const std::string& name) const;
    [[nodiscard]] bool has_input_bus(const std::string& name) const;
    [[nodiscard]] bool has_output_bus(const std::string& name) const;

    // --- inspection --------------------------------------------------------
    [[nodiscard]] std::size_t num_nets() const { return net_names_.size(); }
    [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
    [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
    [[nodiscard]] const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
    [[nodiscard]] const std::vector<NetId>& primary_outputs() const { return primary_outputs_; }
    [[nodiscard]] const std::string& net_name(NetId net) const;
    [[nodiscard]] bool is_primary_input(NetId net) const;
    [[nodiscard]] NetId const_zero_net() const { return const0_; }  // kNoNet if unused
    [[nodiscard]] NetId const_one_net() const { return const1_; }

    /// Gate indices that read the given net.
    [[nodiscard]] const std::vector<std::int32_t>& fanout(NetId net) const {
        return fanouts_[static_cast<std::size_t>(net)];
    }
    /// Index of the gate driving this net, or -1 for PIs/constants.
    [[nodiscard]] std::int32_t driver(NetId net) const {
        return drivers_[static_cast<std::size_t>(net)];
    }

    /// Histogram of cell types, for area/leakage roll-ups and reports.
    [[nodiscard]] std::array<int, cell::kNumCellTypes> cell_histogram() const;

    // --- functional simulation ----------------------------------------------
    /// Evaluate 64 input vectors at once. `pi_words[i]` carries the values of
    /// primary input i across the 64 vectors; returns one word per net.
    [[nodiscard]] std::vector<std::uint64_t> eval_words(
        common::Span<const std::uint64_t> pi_words) const;

    /// Convenience single-vector evaluation: bit i of `pi_bits` is the value
    /// of primary input i. Returns per-net boolean values.
    [[nodiscard]] std::vector<bool> eval(const std::vector<bool>& pi_bits) const;

    /// Read a bus value out of an eval_words() result for vector lane `lane`.
    [[nodiscard]] std::uint64_t bus_value(const std::vector<std::uint64_t>& net_words,
                                          const std::string& bus, int lane) const;

private:
    std::vector<std::string> net_names_;
    std::vector<Gate> gates_;
    std::vector<NetId> primary_inputs_;
    std::vector<NetId> primary_outputs_;
    std::vector<std::int32_t> drivers_;               // per net
    std::vector<std::vector<std::int32_t>> fanouts_;  // per net
    std::map<std::string, std::vector<NetId>> input_buses_;
    std::map<std::string, std::vector<NetId>> output_buses_;
    NetId const0_ = kNoNet;
    NetId const1_ = kNoNet;
};

}  // namespace raq::netlist
