#include "netlist/netlist.hpp"

#include <stdexcept>

namespace raq::netlist {

NetId Netlist::add_net(std::string name) {
    const NetId id = static_cast<NetId>(net_names_.size());
    if (name.empty()) name = "n" + std::to_string(id);
    net_names_.push_back(std::move(name));
    drivers_.push_back(-1);
    fanouts_.emplace_back();
    return id;
}

NetId Netlist::add_primary_input(const std::string& name) {
    const NetId id = add_net(name);
    primary_inputs_.push_back(id);
    return id;
}

void Netlist::mark_primary_output(NetId net, const std::string& name) {
    if (net < 0 || static_cast<std::size_t>(net) >= net_names_.size())
        throw std::out_of_range("Netlist: bad output net");
    primary_outputs_.push_back(net);
    if (!name.empty()) net_names_[static_cast<std::size_t>(net)] = name;
}

NetId Netlist::const_zero() {
    if (const0_ == kNoNet) const0_ = add_net("const0");
    return const0_;
}

NetId Netlist::const_one() {
    if (const1_ == kNoNet) const1_ = add_net("const1");
    return const1_;
}

NetId Netlist::add_gate(cell::CellType type, common::Span<const NetId> inputs,
                        std::string output_name) {
    const int expect = cell::num_inputs(type);
    if (static_cast<int>(inputs.size()) != expect)
        throw std::invalid_argument("Netlist: wrong input count for cell");
    Gate gate;
    gate.type = type;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const NetId in = inputs[i];
        if (in < 0 || static_cast<std::size_t>(in) >= net_names_.size())
            throw std::out_of_range("Netlist: gate input net does not exist");
        gate.inputs[i] = in;
    }
    gate.output = add_net(std::move(output_name));
    const auto gate_index = static_cast<std::int32_t>(gates_.size());
    drivers_[static_cast<std::size_t>(gate.output)] = gate_index;
    for (int i = 0; i < expect; ++i)
        fanouts_[static_cast<std::size_t>(gate.inputs[i])].push_back(gate_index);
    gates_.push_back(gate);
    return gate.output;
}

std::vector<NetId> Netlist::add_input_bus(const std::string& name, int width) {
    if (width <= 0) throw std::invalid_argument("Netlist: bus width must be positive");
    if (input_buses_.count(name)) throw std::invalid_argument("Netlist: duplicate bus " + name);
    std::vector<NetId> bits;
    bits.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
        bits.push_back(add_primary_input(name + "[" + std::to_string(i) + "]"));
    input_buses_[name] = bits;
    return bits;
}

void Netlist::mark_output_bus(const std::string& name, const std::vector<NetId>& bits) {
    if (output_buses_.count(name)) throw std::invalid_argument("Netlist: duplicate bus " + name);
    for (std::size_t i = 0; i < bits.size(); ++i)
        mark_primary_output(bits[i], name + "[" + std::to_string(i) + "]");
    output_buses_[name] = bits;
}

const std::vector<NetId>& Netlist::input_bus(const std::string& name) const {
    const auto it = input_buses_.find(name);
    if (it == input_buses_.end()) throw std::out_of_range("Netlist: no input bus " + name);
    return it->second;
}

const std::vector<NetId>& Netlist::output_bus(const std::string& name) const {
    const auto it = output_buses_.find(name);
    if (it == output_buses_.end()) throw std::out_of_range("Netlist: no output bus " + name);
    return it->second;
}

bool Netlist::has_bus(const std::string& name) const {
    return input_buses_.count(name) != 0 || output_buses_.count(name) != 0;
}

bool Netlist::has_input_bus(const std::string& name) const {
    return input_buses_.count(name) != 0;
}

bool Netlist::has_output_bus(const std::string& name) const {
    return output_buses_.count(name) != 0;
}

const std::string& Netlist::net_name(NetId net) const {
    return net_names_.at(static_cast<std::size_t>(net));
}

bool Netlist::is_primary_input(NetId net) const {
    for (NetId pi : primary_inputs_)
        if (pi == net) return true;
    return false;
}

std::array<int, cell::kNumCellTypes> Netlist::cell_histogram() const {
    std::array<int, cell::kNumCellTypes> hist{};
    for (const Gate& g : gates_) hist[static_cast<int>(g.type)]++;
    return hist;
}

std::vector<std::uint64_t> Netlist::eval_words(
    common::Span<const std::uint64_t> pi_words) const {
    if (pi_words.size() != primary_inputs_.size())
        throw std::invalid_argument("Netlist: eval_words needs one word per primary input");
    std::vector<std::uint64_t> values(net_names_.size(), 0);
    for (std::size_t i = 0; i < primary_inputs_.size(); ++i)
        values[static_cast<std::size_t>(primary_inputs_[i])] = pi_words[i];
    if (const0_ != kNoNet) values[static_cast<std::size_t>(const0_)] = 0;
    if (const1_ != kNoNet) values[static_cast<std::size_t>(const1_)] = ~0ULL;
    // Gates are stored in topological order by construction.
    for (const Gate& g : gates_) {
        std::uint64_t ins[3] = {0, 0, 0};
        const int n = g.num_inputs();
        for (int i = 0; i < n; ++i)
            ins[i] = values[static_cast<std::size_t>(g.inputs[i])];
        values[static_cast<std::size_t>(g.output)] =
            cell::eval_word(g.type, common::Span<const std::uint64_t>(ins, static_cast<std::size_t>(n)));
    }
    return values;
}

std::vector<bool> Netlist::eval(const std::vector<bool>& pi_bits) const {
    std::vector<std::uint64_t> words(primary_inputs_.size(), 0);
    for (std::size_t i = 0; i < pi_bits.size() && i < words.size(); ++i)
        words[i] = pi_bits[i] ? ~0ULL : 0ULL;
    const auto values = eval_words(words);
    std::vector<bool> out(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) out[i] = (values[i] & 1ULL) != 0;
    return out;
}

std::uint64_t Netlist::bus_value(const std::vector<std::uint64_t>& net_words,
                                 const std::string& bus, int lane) const {
    const auto it_out = output_buses_.find(bus);
    const std::vector<NetId>* bits = nullptr;
    if (it_out != output_buses_.end()) {
        bits = &it_out->second;
    } else {
        const auto it_in = input_buses_.find(bus);
        if (it_in == input_buses_.end()) throw std::out_of_range("Netlist: no bus " + bus);
        bits = &it_in->second;
    }
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bits->size(); ++i) {
        const std::uint64_t word = net_words[static_cast<std::size_t>((*bits)[i])];
        value |= ((word >> lane) & 1ULL) << i;
    }
    return value;
}

}  // namespace raq::netlist
