#include <stdexcept>

#include "netlist/builders.hpp"
#include "netlist/gates_util.hpp"

namespace raq::netlist {

Netlist build_mac_circuit(const MacConfig& config) {
    if (config.mul_width < 2)
        throw std::invalid_argument("build_mac_circuit: mul_width must be >= 2");
    const int product_width = 2 * config.mul_width;
    if (config.acc_width < product_width)
        throw std::invalid_argument(
            "build_mac_circuit: accumulator narrower than the product");

    Netlist nl;
    const auto a = nl.add_input_bus("A", config.mul_width);
    const auto b = nl.add_input_bus("B", config.mul_width);
    const auto c = nl.add_input_bus("C", config.acc_width);

    const auto product =
        build_multiplier(nl, config.multiplier, a, b, config.product_adder);

    // Zero-extend the product to the accumulator width; the constant-folding
    // helpers in the adder builders then collapse the upper columns into a
    // pure carry-propagation tail, as synthesis would.
    std::vector<NetId> product_ext(static_cast<std::size_t>(config.acc_width),
                                   nl.const_zero());
    for (std::size_t i = 0; i < product.size(); ++i) product_ext[i] = product[i];

    auto sum = build_adder(nl, config.accumulator_adder, c, product_ext);
    // The carry out of the accumulator is dropped: the paper sizes the
    // 22-bit adder so that accumulation does not overflow in practice.
    nl.mark_output_bus("S", sum.sum);
    return nl;
}

}  // namespace raq::netlist
