// Constant-folding gate construction helpers shared by the arithmetic
// circuit generators. Folding constants at build time mirrors what logic
// synthesis (Design Compiler `compile_ultra`) does: zero-extended operands
// and absent partial-product bits never materialize as dead gates.
#pragma once

#include "netlist/netlist.hpp"

namespace raq::netlist::detail {

inline bool is_const0(const Netlist& nl, NetId n) { return n == nl.const_zero_net() && n != kNoNet; }
inline bool is_const1(const Netlist& nl, NetId n) { return n == nl.const_one_net() && n != kNoNet; }

inline NetId g_not(Netlist& nl, NetId a) {
    if (is_const0(nl, a)) return nl.const_one();
    if (is_const1(nl, a)) return nl.const_zero();
    return nl.add_gate(cell::CellType::Inv, {a});
}

inline NetId g_and(Netlist& nl, NetId a, NetId b) {
    if (is_const0(nl, a) || is_const0(nl, b)) return nl.const_zero();
    if (is_const1(nl, a)) return b;
    if (is_const1(nl, b)) return a;
    return nl.add_gate(cell::CellType::And2, {a, b});
}

inline NetId g_or(Netlist& nl, NetId a, NetId b) {
    if (is_const1(nl, a) || is_const1(nl, b)) return nl.const_one();
    if (is_const0(nl, a)) return b;
    if (is_const0(nl, b)) return a;
    return nl.add_gate(cell::CellType::Or2, {a, b});
}

inline NetId g_xor(Netlist& nl, NetId a, NetId b) {
    if (is_const0(nl, a)) return b;
    if (is_const0(nl, b)) return a;
    if (is_const1(nl, a)) return g_not(nl, b);
    if (is_const1(nl, b)) return g_not(nl, a);
    return nl.add_gate(cell::CellType::Xor2, {a, b});
}

inline NetId g_mux(Netlist& nl, NetId a, NetId b, NetId sel) {
    if (is_const0(nl, sel)) return a;
    if (is_const1(nl, sel)) return b;
    if (a == b) return a;
    return nl.add_gate(cell::CellType::Mux2, {a, b, sel});
}

struct SumCarry {
    NetId sum = kNoNet;
    NetId carry = kNoNet;
};

inline SumCarry half_adder(Netlist& nl, NetId a, NetId b) {
    return {g_xor(nl, a, b), g_and(nl, a, b)};
}

inline SumCarry full_adder(Netlist& nl, NetId a, NetId b, NetId c) {
    const NetId t = g_xor(nl, a, b);
    const NetId sum = g_xor(nl, t, c);
    const NetId carry = g_or(nl, g_and(nl, a, b), g_and(nl, t, c));
    return {sum, carry};
}

}  // namespace raq::netlist::detail
