#include <stdexcept>

#include "netlist/builders.hpp"
#include "netlist/gates_util.hpp"

namespace raq::netlist {

using detail::full_adder;
using detail::g_and;
using detail::g_mux;
using detail::g_or;
using detail::g_xor;
using detail::half_adder;

const char* adder_name(AdderKind kind) {
    switch (kind) {
        case AdderKind::RippleCarry: return "ripple-carry";
        case AdderKind::Sklansky: return "sklansky";
        case AdderKind::KoggeStone: return "kogge-stone";
        case AdderKind::CarrySelect: return "carry-select";
    }
    return "?";
}

namespace {

AdderOutputs build_ripple(Netlist& nl, const std::vector<NetId>& a,
                          const std::vector<NetId>& b, NetId carry_in) {
    AdderOutputs out;
    const std::size_t n = a.size();
    out.sum.resize(n);
    NetId carry = carry_in;
    for (std::size_t i = 0; i < n; ++i) {
        if (carry == kNoNet) {
            const auto hc = half_adder(nl, a[i], b[i]);
            out.sum[i] = hc.sum;
            carry = hc.carry;
        } else {
            const auto fc = full_adder(nl, a[i], b[i], carry);
            out.sum[i] = fc.sum;
            carry = fc.carry;
        }
    }
    out.carry_out = carry;
    return out;
}

struct GenProp {
    NetId g = kNoNet;
    NetId p = kNoNet;
};

GenProp combine(Netlist& nl, const GenProp& hi, const GenProp& lo) {
    // (G, P) o (G', P') = (G | P & G',  P & P')
    GenProp out;
    out.g = g_or(nl, hi.g, g_and(nl, hi.p, lo.g));
    out.p = g_and(nl, hi.p, lo.p);
    return out;
}

/// Shared tail for parallel-prefix adders: from per-bit (p, g) and the
/// cumulative carries C_i = G[0..i], produce sum bits.
AdderOutputs prefix_sums(Netlist& nl, const std::vector<NetId>& p,
                         const std::vector<GenProp>& prefix, NetId carry_in) {
    const std::size_t n = p.size();
    AdderOutputs out;
    out.sum.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        NetId carry_into_i;  // carry entering bit i
        if (i == 0) {
            carry_into_i = carry_in;
        } else if (carry_in == kNoNet) {
            carry_into_i = prefix[i - 1].g;
        } else {
            // C_i = G[0..i-1] | P[0..i-1] & cin
            carry_into_i =
                g_or(nl, prefix[i - 1].g, g_and(nl, prefix[i - 1].p, carry_in));
        }
        out.sum[i] = (carry_into_i == kNoNet) ? p[i] : g_xor(nl, p[i], carry_into_i);
    }
    if (carry_in == kNoNet) {
        out.carry_out = prefix[n - 1].g;
    } else {
        out.carry_out =
            g_or(nl, prefix[n - 1].g, g_and(nl, prefix[n - 1].p, carry_in));
    }
    return out;
}

AdderOutputs build_sklansky(Netlist& nl, const std::vector<NetId>& a,
                            const std::vector<NetId>& b, NetId carry_in) {
    const std::size_t n = a.size();
    std::vector<NetId> p(n);
    std::vector<GenProp> gp(n);
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = g_xor(nl, a[i], b[i]);
        gp[i] = {g_and(nl, a[i], b[i]), p[i]};
    }
    // Sklansky divide-and-conquer: at level `lev` every index whose bit
    // `lev` is set merges with the top of the block below it. After level
    // lev, gp[i] spans [0..i] for all i < 2^(lev+1).
    for (std::size_t lev = 0; (std::size_t{1} << lev) < n; ++lev) {
        for (std::size_t i = 0; i < n; ++i) {
            if (i & (std::size_t{1} << lev)) {
                const std::size_t j = ((i >> lev) << lev) - 1;
                gp[i] = combine(nl, gp[i], gp[j]);
            }
        }
    }
    return prefix_sums(nl, p, gp, carry_in);
}

AdderOutputs build_kogge_stone(Netlist& nl, const std::vector<NetId>& a,
                               const std::vector<NetId>& b, NetId carry_in) {
    const std::size_t n = a.size();
    std::vector<NetId> p(n);
    std::vector<GenProp> gp(n);
    for (std::size_t i = 0; i < n; ++i) {
        p[i] = g_xor(nl, a[i], b[i]);
        gp[i] = {g_and(nl, a[i], b[i]), p[i]};
    }
    for (std::size_t offset = 1; offset < n; offset <<= 1) {
        std::vector<GenProp> next = gp;
        for (std::size_t i = offset; i < n; ++i)
            next[i] = combine(nl, gp[i], gp[i - offset]);
        gp = std::move(next);
    }
    return prefix_sums(nl, p, gp, carry_in);
}

AdderOutputs build_carry_select(Netlist& nl, const std::vector<NetId>& a,
                                const std::vector<NetId>& b, NetId carry_in,
                                std::size_t block = 4) {
    const std::size_t n = a.size();
    AdderOutputs out;
    out.sum.resize(n);
    NetId carry = carry_in;
    for (std::size_t start = 0; start < n; start += block) {
        const std::size_t end = std::min(start + block, n);
        const std::vector<NetId> ablk(a.begin() + static_cast<long>(start),
                                      a.begin() + static_cast<long>(end));
        const std::vector<NetId> bblk(b.begin() + static_cast<long>(start),
                                      b.begin() + static_cast<long>(end));
        if (start == 0) {
            auto blk = build_ripple(nl, ablk, bblk, carry);
            for (std::size_t i = start; i < end; ++i) out.sum[i] = blk.sum[i - start];
            carry = blk.carry_out;
            continue;
        }
        // Two speculative chains (cin = 0 and cin = 1), muxed by the real carry.
        auto blk0 = build_ripple(nl, ablk, bblk, kNoNet);
        auto blk1 = build_ripple(nl, ablk, bblk, nl.const_one());
        for (std::size_t i = start; i < end; ++i)
            out.sum[i] = g_mux(nl, blk0.sum[i - start], blk1.sum[i - start], carry);
        carry = g_mux(nl, blk0.carry_out, blk1.carry_out, carry);
    }
    out.carry_out = carry;
    return out;
}

}  // namespace

AdderOutputs build_adder(Netlist& nl, AdderKind kind, const std::vector<NetId>& a,
                         const std::vector<NetId>& b, NetId carry_in) {
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument("build_adder: operands must be equal, non-zero width");
    switch (kind) {
        case AdderKind::RippleCarry: return build_ripple(nl, a, b, carry_in);
        case AdderKind::Sklansky: return build_sklansky(nl, a, b, carry_in);
        case AdderKind::KoggeStone: return build_kogge_stone(nl, a, b, carry_in);
        case AdderKind::CarrySelect: return build_carry_select(nl, a, b, carry_in);
    }
    throw std::invalid_argument("build_adder: unknown kind");
}

Netlist build_adder_circuit(int width, AdderKind kind) {
    Netlist nl;
    const auto a = nl.add_input_bus("A", width);
    const auto b = nl.add_input_bus("B", width);
    auto res = build_adder(nl, kind, a, b);
    nl.mark_output_bus("S", res.sum);
    nl.mark_output_bus("COUT", {res.carry_out});
    return nl;
}

}  // namespace raq::netlist
