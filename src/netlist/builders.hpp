// Arithmetic circuit generators: adders, multipliers and the MAC unit.
//
// Substitution note (DESIGN.md §2): the paper synthesizes a DesignWare
// MAC (8-bit unsigned multiplier + 22-bit unsigned adder) with Design
// Compiler at maximum performance. We generate equivalent structural
// netlists directly: several adder architectures (ripple-carry for the
// [10]-style slow baselines, Sklansky / Kogge-Stone parallel-prefix and
// carry-select for the performance-optimized designs) and two multiplier
// architectures (array — the slow structure the paper attributes to [10]
// — and Wallace-tree CSA reduction, the DesignWare-class structure).
// What the experiments need from "synthesis" is a netlist whose path
// delays shrink when input bits are tied to constants; these generators
// provide exactly that.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace raq::netlist {

enum class AdderKind { RippleCarry, Sklansky, KoggeStone, CarrySelect };
enum class MultiplierKind { Array, Wallace };

[[nodiscard]] const char* adder_name(AdderKind kind);
[[nodiscard]] const char* multiplier_name(MultiplierKind kind);

struct AdderOutputs {
    std::vector<NetId> sum;   ///< same width as the inputs
    NetId carry_out = kNoNet;
};

/// Build an n-bit adder over existing nets (a and b must be equal width).
AdderOutputs build_adder(Netlist& nl, AdderKind kind, const std::vector<NetId>& a,
                         const std::vector<NetId>& b, NetId carry_in = kNoNet);

/// Build an n x n unsigned multiplier over existing nets; returns 2n
/// product bits (LSB first).
std::vector<NetId> build_multiplier(Netlist& nl, MultiplierKind kind,
                                    const std::vector<NetId>& a,
                                    const std::vector<NetId>& b,
                                    AdderKind final_adder = AdderKind::Sklansky);

/// Standalone multiplier circuit with input buses "A","B" and output "P".
Netlist build_multiplier_circuit(int width, MultiplierKind kind = MultiplierKind::Wallace,
                                 AdderKind final_adder = AdderKind::Sklansky);

/// Standalone adder circuit with buses "A","B" -> "S" (plus "COUT").
Netlist build_adder_circuit(int width, AdderKind kind);

/// MAC configuration: the paper's driving circuit is mul_width = 8,
/// acc_width = 22 (8-bit unsigned multiplier, 22-bit unsigned accumulator).
///
/// Default architecture: carry-save array multiplier + ripple-carry
/// vector-merge accumulator. Rationale:
///  * at 8 bits the array's short carry-save diagonals are competitive
///    with the Wallace tree under our cell characterization (from ~12
///    bits up Wallace wins, as expected asymptotically);
///  * behind a carry-save array the outputs arrive LSB-first, which is
///    exactly the schedule a ripple merge consumes — the classic
///    vector-merge choice, costing only ~6 % vs a prefix merge here;
///  * most importantly, this structure reproduces the paper's measured
///    compression-delay landscape (Fig. 2): ~25 % delay gain at (4,4)
///    (paper: ~23 %) with mixed MSB/LSB padding winners, which drives
///    Table 2-class selections ((2,4)/LSB, (3,4)-class at end of life).
///    Prefix-heavy accumulators make compression "too effective"
///    (> 35 % at (4,4)) relative to the paper's synthesized netlist.
struct MacConfig {
    int mul_width = 8;
    int acc_width = 22;
    MultiplierKind multiplier = MultiplierKind::Array;
    AdderKind product_adder = AdderKind::Sklansky;  ///< Wallace final CPA (unused by Array)
    AdderKind accumulator_adder = AdderKind::RippleCarry;
};

/// MAC circuit computing S = A*B + C (carry-out beyond acc_width dropped,
/// as in a saturating-free accumulator). Buses: "A","B","C" -> "S".
Netlist build_mac_circuit(const MacConfig& config = {});

}  // namespace raq::netlist
