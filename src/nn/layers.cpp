#include "nn/layers.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"

namespace raq::nn {

void kaiming_init(std::vector<float>& weights, std::size_t fan_in, std::uint64_t seed) {
    common::Rng rng(seed);
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    for (auto& w : weights) w = stddev * static_cast<float>(rng.next_gaussian());
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int in_c, int out_c, int kernel, int stride, int pad, std::uint64_t seed,
               std::string name)
    : in_c_(in_c), out_c_(out_c), kernel_(kernel), stride_(stride), pad_(pad),
      name_(std::move(name)) {
    if (in_c <= 0 || out_c <= 0 || kernel <= 0 || stride <= 0 || pad < 0)
        throw std::invalid_argument("Conv2d: bad configuration");
    const std::size_t fan_in = static_cast<std::size_t>(in_c) *
                               static_cast<std::size_t>(kernel) *
                               static_cast<std::size_t>(kernel);
    weight.resize(static_cast<std::size_t>(out_c) * fan_in);
    weight.name = name_ + ".weight";
    kaiming_init(weight.value, fan_in, seed);
    bias.resize(static_cast<std::size_t>(out_c));
    bias.name = name_ + ".bias";
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& x, bool training) {
    if (x.shape().c != in_c_) throw std::invalid_argument(name_ + ": channel mismatch");
    if (training) cached_input_ = x;
    int oh = 0, ow = 0;
    std::vector<float> columns;
    tensor::im2col(x, kernel_, kernel_, stride_, pad_, columns, oh, ow);
    const std::size_t kdim = weight.value.size() / static_cast<std::size_t>(out_c_);
    const std::size_t cols = static_cast<std::size_t>(x.shape().n) *
                             static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    std::vector<float> product(static_cast<std::size_t>(out_c_) * cols);
    tensor::gemm(weight.value.data(), columns.data(), product.data(),
                 static_cast<std::size_t>(out_c_), kdim, cols);
    tensor::Tensor out({x.shape().n, out_c_, oh, ow});
    const std::size_t hw = static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
    for (int n = 0; n < x.shape().n; ++n)
        for (int oc = 0; oc < out_c_; ++oc) {
            const float b = bias.value[static_cast<std::size_t>(oc)];
            const float* src = product.data() + static_cast<std::size_t>(oc) * cols +
                               static_cast<std::size_t>(n) * hw;
            float* dst = out.data() +
                         (static_cast<std::size_t>(n) * static_cast<std::size_t>(out_c_) +
                          static_cast<std::size_t>(oc)) *
                             hw;
            for (std::size_t i = 0; i < hw; ++i) dst[i] = src[i] + b;
        }
    return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_out) {
    const tensor::Tensor& x = cached_input_;
    if (x.size() == 0) throw std::logic_error(name_ + ": backward before forward(training)");
    const auto& gs = grad_out.shape();
    const std::size_t hw = static_cast<std::size_t>(gs.h) * static_cast<std::size_t>(gs.w);
    const std::size_t cols = static_cast<std::size_t>(gs.n) * hw;
    const std::size_t kdim = weight.value.size() / static_cast<std::size_t>(out_c_);

    // Re-expand the input patches (recompute instead of caching: halves the
    // training memory footprint of deep models).
    int oh = 0, ow = 0;
    std::vector<float> columns;
    tensor::im2col(x, kernel_, kernel_, stride_, pad_, columns, oh, ow);

    // grad_out as a [out_c, n*oh*ow] matrix.
    std::vector<float> gout_mat(static_cast<std::size_t>(out_c_) * cols);
    for (int n = 0; n < gs.n; ++n)
        for (int oc = 0; oc < out_c_; ++oc) {
            const float* src = grad_out.data() +
                               (static_cast<std::size_t>(n) * static_cast<std::size_t>(out_c_) +
                                static_cast<std::size_t>(oc)) *
                                   hw;
            float* dst = gout_mat.data() + static_cast<std::size_t>(oc) * cols +
                         static_cast<std::size_t>(n) * hw;
            std::copy(src, src + hw, dst);
        }

    // dW += gout_mat x columns^T ; db += row sums of gout_mat.
    tensor::gemm_bt(gout_mat.data(), columns.data(), weight.grad.data(),
                    static_cast<std::size_t>(out_c_), cols, kdim, /*accumulate=*/true);
    for (int oc = 0; oc < out_c_; ++oc) {
        float acc = 0;
        const float* row = gout_mat.data() + static_cast<std::size_t>(oc) * cols;
        for (std::size_t i = 0; i < cols; ++i) acc += row[i];
        bias.grad[static_cast<std::size_t>(oc)] += acc;
    }

    // dX = col2im(W^T x gout_mat).
    std::vector<float> dcols(kdim * cols);
    tensor::gemm_at(weight.value.data(), gout_mat.data(), dcols.data(), kdim,
                    static_cast<std::size_t>(out_c_), cols);
    tensor::Tensor grad_in;
    tensor::col2im(dcols, x.shape(), kernel_, kernel_, stride_, pad_, grad_in);
    return grad_in;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

std::pair<int, tensor::Shape> Conv2d::append_ir(ir::Graph& graph, int input_id,
                                                tensor::Shape input_shape) const {
    ir::Op op;
    op.kind = ir::OpKind::Conv2d;
    op.name = name_;
    op.inputs = {input_id};
    op.conv = {in_c_, out_c_, kernel_, kernel_, stride_, pad_};
    op.weights = weight.value;
    op.bias = bias.value;
    const int id = graph.add(std::move(op));
    tensor::Shape out = input_shape;
    out.c = out_c_;
    out.h = tensor::conv_out_dim(input_shape.h, kernel_, stride_, pad_);
    out.w = tensor::conv_out_dim(input_shape.w, kernel_, stride_, pad_);
    return {id, out};
}

std::pair<int, tensor::Shape> Conv2d::append_ir_folded(ir::Graph& graph, int input_id,
                                                       tensor::Shape input_shape,
                                                       const BatchNorm2d& bn) const {
    std::vector<float> scale, shift;
    bn.folded_affine(scale, shift);
    if (scale.size() != static_cast<std::size_t>(out_c_))
        throw std::invalid_argument(name_ + ": BN channel mismatch while folding");
    ir::Op op;
    op.kind = ir::OpKind::Conv2d;
    op.name = name_ + "+bnfold";
    op.inputs = {input_id};
    op.conv = {in_c_, out_c_, kernel_, kernel_, stride_, pad_};
    op.weights = weight.value;
    op.bias.resize(static_cast<std::size_t>(out_c_));
    const std::size_t kdim = weight.value.size() / static_cast<std::size_t>(out_c_);
    for (int oc = 0; oc < out_c_; ++oc) {
        const float s = scale[static_cast<std::size_t>(oc)];
        float* wrow = op.weights.data() + static_cast<std::size_t>(oc) * kdim;
        for (std::size_t i = 0; i < kdim; ++i) wrow[i] *= s;
        op.bias[static_cast<std::size_t>(oc)] =
            bias.value[static_cast<std::size_t>(oc)] * s + shift[static_cast<std::size_t>(oc)];
    }
    const int id = graph.add(std::move(op));
    tensor::Shape out = input_shape;
    out.c = out_c_;
    out.h = tensor::conv_out_dim(input_shape.h, kernel_, stride_, pad_);
    out.w = tensor::conv_out_dim(input_shape.w, kernel_, stride_, pad_);
    return {id, out};
}

// ------------------------------------------------------------ BatchNorm2d

BatchNorm2d::BatchNorm2d(int channels, std::string name)
    : channels_(channels), name_(std::move(name)) {
    gamma.resize(static_cast<std::size_t>(channels));
    beta.resize(static_cast<std::size_t>(channels));
    running_mean.resize(static_cast<std::size_t>(channels));
    running_var.resize(static_cast<std::size_t>(channels));
    gamma.name = name_ + ".gamma";
    beta.name = name_ + ".beta";
    running_mean.name = name_ + ".running_mean";
    running_var.name = name_ + ".running_var";
    running_mean.trainable = false;
    running_var.trainable = false;
    std::fill(gamma.value.begin(), gamma.value.end(), 1.0f);
    std::fill(running_var.value.begin(), running_var.value.end(), 1.0f);
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& x, bool training) {
    const auto& s = x.shape();
    if (s.c != channels_) throw std::invalid_argument(name_ + ": channel mismatch");
    const std::size_t hw = static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w);
    const std::size_t m = static_cast<std::size_t>(s.n) * hw;
    tensor::Tensor out(s);
    if (training) {
        cached_xhat_ = tensor::Tensor(s);
        cached_invstd_.assign(static_cast<std::size_t>(channels_), 0.0f);
    }
    for (int c = 0; c < channels_; ++c) {
        float mean, var;
        if (training) {
            double sum = 0, sq = 0;
            for (int n = 0; n < s.n; ++n) {
                const float* src = x.data() +
                                   (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                                    static_cast<std::size_t>(c)) *
                                       hw;
                for (std::size_t i = 0; i < hw; ++i) {
                    sum += src[i];
                    sq += static_cast<double>(src[i]) * src[i];
                }
            }
            mean = static_cast<float>(sum / static_cast<double>(m));
            var = static_cast<float>(sq / static_cast<double>(m)) - mean * mean;
            if (var < 0) var = 0;
            running_mean.value[static_cast<std::size_t>(c)] =
                (1 - momentum_) * running_mean.value[static_cast<std::size_t>(c)] +
                momentum_ * mean;
            running_var.value[static_cast<std::size_t>(c)] =
                (1 - momentum_) * running_var.value[static_cast<std::size_t>(c)] +
                momentum_ * var;
        } else {
            mean = running_mean.value[static_cast<std::size_t>(c)];
            var = running_var.value[static_cast<std::size_t>(c)];
        }
        const float invstd = 1.0f / std::sqrt(var + eps_);
        const float g = gamma.value[static_cast<std::size_t>(c)];
        const float b = beta.value[static_cast<std::size_t>(c)];
        if (training) cached_invstd_[static_cast<std::size_t>(c)] = invstd;
        for (int n = 0; n < s.n; ++n) {
            const std::size_t base =
                (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                 static_cast<std::size_t>(c)) *
                hw;
            const float* src = x.data() + base;
            float* dst = out.data() + base;
            float* xh = training ? cached_xhat_.data() + base : nullptr;
            for (std::size_t i = 0; i < hw; ++i) {
                const float xhat = (src[i] - mean) * invstd;
                if (xh) xh[i] = xhat;
                dst[i] = g * xhat + b;
            }
        }
    }
    return out;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_out) {
    const auto& s = grad_out.shape();
    if (cached_xhat_.size() != grad_out.size())
        throw std::logic_error(name_ + ": backward before forward(training)");
    const std::size_t hw = static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w);
    const double m = static_cast<double>(s.n) * static_cast<double>(hw);
    tensor::Tensor grad_in(s);
    for (int c = 0; c < channels_; ++c) {
        double dbeta = 0, dgamma = 0;
        for (int n = 0; n < s.n; ++n) {
            const std::size_t base =
                (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                 static_cast<std::size_t>(c)) *
                hw;
            const float* g = grad_out.data() + base;
            const float* xh = cached_xhat_.data() + base;
            for (std::size_t i = 0; i < hw; ++i) {
                dbeta += g[i];
                dgamma += static_cast<double>(g[i]) * xh[i];
            }
        }
        beta.grad[static_cast<std::size_t>(c)] += static_cast<float>(dbeta);
        gamma.grad[static_cast<std::size_t>(c)] += static_cast<float>(dgamma);
        const float ginv = gamma.value[static_cast<std::size_t>(c)] *
                           cached_invstd_[static_cast<std::size_t>(c)] /
                           static_cast<float>(m);
        for (int n = 0; n < s.n; ++n) {
            const std::size_t base =
                (static_cast<std::size_t>(n) * static_cast<std::size_t>(s.c) +
                 static_cast<std::size_t>(c)) *
                hw;
            const float* g = grad_out.data() + base;
            const float* xh = cached_xhat_.data() + base;
            float* gi = grad_in.data() + base;
            for (std::size_t i = 0; i < hw; ++i)
                gi[i] = ginv * (static_cast<float>(m) * g[i] - static_cast<float>(dbeta) -
                                xh[i] * static_cast<float>(dgamma));
        }
    }
    return grad_in;
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
    out.push_back(&gamma);
    out.push_back(&beta);
    out.push_back(&running_mean);
    out.push_back(&running_var);
}

void BatchNorm2d::folded_affine(std::vector<float>& scale, std::vector<float>& shift) const {
    scale.resize(static_cast<std::size_t>(channels_));
    shift.resize(static_cast<std::size_t>(channels_));
    for (int c = 0; c < channels_; ++c) {
        const float invstd =
            1.0f / std::sqrt(running_var.value[static_cast<std::size_t>(c)] + eps_);
        scale[static_cast<std::size_t>(c)] =
            gamma.value[static_cast<std::size_t>(c)] * invstd;
        shift[static_cast<std::size_t>(c)] =
            beta.value[static_cast<std::size_t>(c)] -
            gamma.value[static_cast<std::size_t>(c)] * invstd *
                running_mean.value[static_cast<std::size_t>(c)];
    }
}

std::pair<int, tensor::Shape> BatchNorm2d::append_ir(ir::Graph& graph, int input_id,
                                                     tensor::Shape input_shape) const {
    // Standalone BN (not fused with a conv) is lowered as a 1x1 depthwise-
    // style conv would be overkill; our architectures always place BN after
    // a conv, so Sequential folds it. Reaching here indicates a topology we
    // do not support.
    (void)graph;
    (void)input_id;
    (void)input_shape;
    throw std::logic_error(name_ + ": standalone BatchNorm cannot be lowered; fold into conv");
}

// ----------------------------------------------------------------- ReLU

tensor::Tensor ReLU::forward(const tensor::Tensor& x, bool training) {
    tensor::Tensor out = x;
    if (training) mask_.assign(x.size(), false);
    for (std::size_t i = 0; i < out.size(); ++i) {
        const bool pos = out[i] > 0.0f;
        if (training) mask_[i] = pos;
        if (!pos) out[i] = 0.0f;
    }
    return out;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_out) {
    if (mask_.size() != grad_out.size())
        throw std::logic_error("ReLU: backward before forward(training)");
    tensor::Tensor grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        if (!mask_[i]) grad_in[i] = 0.0f;
    return grad_in;
}

std::pair<int, tensor::Shape> ReLU::append_ir(ir::Graph& graph, int input_id,
                                              tensor::Shape input_shape) const {
    ir::Op op;
    op.kind = ir::OpKind::Relu;
    op.inputs = {input_id};
    op.name = "relu";
    return {graph.add(std::move(op)), input_shape};
}

// ------------------------------------------------------------- MaxPool2d

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& x, bool training) {
    const auto& s = x.shape();
    in_shape_ = s;
    const int oh = tensor::conv_out_dim(s.h, kernel_, stride_, 0);
    const int ow = tensor::conv_out_dim(s.w, kernel_, stride_, 0);
    tensor::Tensor out({s.n, s.c, oh, ow});
    if (training) argmax_.assign(out.size(), 0);
    std::size_t oi = 0;
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c)
            for (int oy = 0; oy < oh; ++oy)
                for (int ox = 0; ox < ow; ++ox, ++oi) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (int ky = 0; ky < kernel_; ++ky)
                        for (int kx = 0; kx < kernel_; ++kx) {
                            const int iy = oy * stride_ + ky;
                            const int ix = ox * stride_ + kx;
                            if (iy >= s.h || ix >= s.w) continue;
                            const float v = x.at(n, c, iy, ix);
                            if (v > best) {
                                best = v;
                                best_idx = ((static_cast<std::size_t>(n) * s.c + c) * s.h + iy) *
                                               static_cast<std::size_t>(s.w) +
                                           static_cast<std::size_t>(ix);
                            }
                        }
                    out[oi] = best;
                    if (training) argmax_[oi] = best_idx;
                }
    return out;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_out) {
    if (argmax_.size() != grad_out.size())
        throw std::logic_error("MaxPool2d: backward before forward(training)");
    tensor::Tensor grad_in(in_shape_);
    for (std::size_t i = 0; i < grad_out.size(); ++i) grad_in[argmax_[i]] += grad_out[i];
    return grad_in;
}

std::pair<int, tensor::Shape> MaxPool2d::append_ir(ir::Graph& graph, int input_id,
                                                   tensor::Shape input_shape) const {
    ir::Op op;
    op.kind = ir::OpKind::MaxPool2d;
    op.inputs = {input_id};
    op.pool = {kernel_, stride_};
    op.name = "maxpool";
    tensor::Shape out = input_shape;
    out.h = tensor::conv_out_dim(input_shape.h, kernel_, stride_, 0);
    out.w = tensor::conv_out_dim(input_shape.w, kernel_, stride_, 0);
    return {graph.add(std::move(op)), out};
}

// --------------------------------------------------------- GlobalAvgPool

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& x, bool training) {
    (void)training;
    const auto& s = x.shape();
    in_shape_ = s;
    tensor::Tensor out({s.n, s.c, 1, 1});
    const float inv = 1.0f / static_cast<float>(s.h * s.w);
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c) {
            float acc = 0;
            for (int y = 0; y < s.h; ++y)
                for (int x2 = 0; x2 < s.w; ++x2) acc += x.at(n, c, y, x2);
            out.at(n, c, 0, 0) = acc * inv;
        }
    return out;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor grad_in(in_shape_);
    const float inv = 1.0f / static_cast<float>(in_shape_.h * in_shape_.w);
    for (int n = 0; n < in_shape_.n; ++n)
        for (int c = 0; c < in_shape_.c; ++c) {
            const float g = grad_out.at(n, c, 0, 0) * inv;
            for (int y = 0; y < in_shape_.h; ++y)
                for (int x = 0; x < in_shape_.w; ++x) grad_in.at(n, c, y, x) = g;
        }
    return grad_in;
}

std::pair<int, tensor::Shape> GlobalAvgPool::append_ir(ir::Graph& graph, int input_id,
                                                       tensor::Shape input_shape) const {
    ir::Op op;
    op.kind = ir::OpKind::GlobalAvgPool;
    op.inputs = {input_id};
    op.name = "gap";
    tensor::Shape out = input_shape;
    out.h = out.w = 1;
    return {graph.add(std::move(op)), out};
}

// ---------------------------------------------------------------- Linear

Linear::Linear(int in_features, int out_features, std::uint64_t seed, std::string name)
    : in_features_(in_features), out_features_(out_features), name_(std::move(name)) {
    weight.resize(static_cast<std::size_t>(out_features) *
                  static_cast<std::size_t>(in_features));
    weight.name = name_ + ".weight";
    kaiming_init(weight.value, static_cast<std::size_t>(in_features), seed);
    bias.resize(static_cast<std::size_t>(out_features));
    bias.name = name_ + ".bias";
}

tensor::Tensor Linear::forward(const tensor::Tensor& x, bool training) {
    const auto& s = x.shape();
    const int features = s.c * s.h * s.w;
    if (features != in_features_) throw std::invalid_argument(name_ + ": feature mismatch");
    if (training) cached_input_ = x;
    tensor::Tensor out({s.n, out_features_, 1, 1});
    tensor::gemm_bt(x.data(), weight.value.data(), out.data(),
                    static_cast<std::size_t>(s.n), static_cast<std::size_t>(in_features_),
                    static_cast<std::size_t>(out_features_));
    for (int n = 0; n < s.n; ++n)
        for (int o = 0; o < out_features_; ++o)
            out.at(n, o, 0, 0) += bias.value[static_cast<std::size_t>(o)];
    return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_out) {
    const tensor::Tensor& x = cached_input_;
    if (x.size() == 0) throw std::logic_error(name_ + ": backward before forward(training)");
    const int n = grad_out.shape().n;
    // dW += gout^T x ; db += column sums.
    tensor::gemm_at(grad_out.data(), x.data(), weight.grad.data(),
                    static_cast<std::size_t>(out_features_), static_cast<std::size_t>(n),
                    static_cast<std::size_t>(in_features_), /*accumulate=*/true);
    for (int i = 0; i < n; ++i)
        for (int o = 0; o < out_features_; ++o)
            bias.grad[static_cast<std::size_t>(o)] += grad_out.at(i, o, 0, 0);
    // dX = gout x W.
    tensor::Tensor grad_in(x.shape());
    tensor::gemm(grad_out.data(), weight.value.data(), grad_in.data(),
                 static_cast<std::size_t>(n), static_cast<std::size_t>(out_features_),
                 static_cast<std::size_t>(in_features_));
    return grad_in;
}

void Linear::collect_params(std::vector<Param*>& out) {
    out.push_back(&weight);
    out.push_back(&bias);
}

std::pair<int, tensor::Shape> Linear::append_ir(ir::Graph& graph, int input_id,
                                                tensor::Shape input_shape) const {
    // Lower as a convolution whose kernel covers the full spatial extent:
    // the [out][c*h*w] weight layout matches [oc][ic*kh*kw] exactly.
    if (input_shape.c * input_shape.h * input_shape.w != in_features_)
        throw std::invalid_argument(name_ + ": IR lowering feature mismatch");
    ir::Op op;
    op.kind = ir::OpKind::Conv2d;
    op.name = name_;
    op.inputs = {input_id};
    op.conv = {input_shape.c, out_features_, input_shape.h, input_shape.w, 1, 0};
    op.weights = weight.value;
    op.bias = bias.value;
    tensor::Shape out = input_shape;
    out.c = out_features_;
    out.h = out.w = 1;
    return {graph.add(std::move(op)), out};
}

}  // namespace raq::nn
