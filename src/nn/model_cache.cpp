#include "nn/model_cache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "nn/trainer.hpp"
#include "nn/zoo.hpp"

namespace raq::nn {

ModelCache::ModelCache(std::string dir, data::DatasetConfig dataset_config)
    : dir_(std::move(dir)) {
    if (dir_.empty()) {
        if (const char* env = std::getenv("RAQ_MODEL_CACHE"))
            dir_ = env;
        else
            dir_ = "models_cache";
    }
    std::filesystem::create_directories(dir_);
    dataset_ = std::make_unique<data::SyntheticDataset>(dataset_config);
}

std::string ModelCache::model_path(const std::string& name) const {
    return dir_ + "/" + name + ".net";
}

namespace {

/// Write-then-rename so no reader ever observes a half-written model:
/// ensure() trains outside the cache mutex, and a concurrent get() must
/// either see no file or a complete one.
void save_atomically(Network& net, const std::string& path) {
    static std::atomic<unsigned> counter{0};
    const std::string tmp = path + ".tmp" + std::to_string(counter.fetch_add(1));
    net.save(tmp);
    std::filesystem::rename(tmp, path);
}

}  // namespace

Network ModelCache::train_and_save(const std::string& name) {
    Network net = make_network(name);
    SgdTrainer trainer(recommended_train_config(name));
    const TrainResult result = trainer.fit(net, *dataset_);
    std::fprintf(stderr, "[model-cache] trained %s: test acc %.1f%% (loss %.3f)\n",
                 name.c_str(), 100.0 * result.test_accuracy, result.final_train_loss);
    save_atomically(net, model_path(name));
    return net;
}

Network& ModelCache::get(const std::string& name) {
    // Coarse lock: concurrent first-loads of the same model must not race
    // on loaded_, and training the same model twice would waste minutes.
    const common::MutexLock lock(mutex_);
    if (const auto it = loaded_.find(name); it != loaded_.end()) return *it->second;
    auto net = std::make_unique<Network>(make_network(name));
    const std::string path = model_path(name);
    if (std::filesystem::exists(path)) {
        net->load(path);
    } else {
        *net = train_and_save(name);
    }
    auto [it, inserted] = loaded_.emplace(name, std::move(net));
    (void)inserted;
    return *it->second;
}

void ModelCache::ensure(const std::vector<std::string>& names, int threads) {
    std::vector<std::string> missing;
    {
        const common::MutexLock lock(mutex_);
        for (const auto& name : names)
            if (!std::filesystem::exists(model_path(name)) && !loaded_.count(name))
                missing.push_back(name);
    }
    if (missing.empty()) return;
    if (threads <= 0)
        threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
    std::fprintf(stderr,
                 "[model-cache] training %zu missing model(s) with %d thread(s); "
                 "results are cached under %s\n",
                 missing.size(), threads, dir_.c_str());
    std::size_t next = 0;
    std::vector<std::thread> workers;
    std::mutex mutex;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (;;) {
                std::string name;
                {
                    const std::lock_guard<std::mutex> lock(mutex);
                    if (next >= missing.size()) return;
                    name = missing[next++];
                }
                // Training writes only to the thread-local network; the
                // shared dataset is read-only.
                Network net = make_network(name);
                SgdTrainer trainer(recommended_train_config(name));
                const TrainResult result = trainer.fit(net, *dataset_);
                save_atomically(net, model_path(name));
                std::fprintf(stderr, "[model-cache] trained %s: test acc %.1f%%\n",
                             name.c_str(), 100.0 * result.test_accuracy);
            }
        });
    }
    for (auto& w : workers) w.join();
}

}  // namespace raq::nn
