// Train-once model cache: trained weights are persisted on disk so every
// bench/example/test shares the same models (and the same FP32 baseline
// accuracies) without retraining. Missing models are trained in parallel.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "data/synthetic_dataset.hpp"
#include "nn/network.hpp"

namespace raq::nn {

class ModelCache {
public:
    /// `dir` defaults to $RAQ_MODEL_CACHE or "models_cache" under the
    /// current working directory; created if missing.
    explicit ModelCache(std::string dir = {}, data::DatasetConfig dataset_config = {});

    /// The dataset all cached models are trained/evaluated on.
    [[nodiscard]] const data::SyntheticDataset& dataset() const { return *dataset_; }

    /// Load (or train + persist) a model; the returned reference stays
    /// valid for the cache's lifetime. Safe to call concurrently (the
    /// serving runtime warms models from multiple threads).
    Network& get(const std::string& name) RAQ_EXCLUDES(mutex_);

    /// Train all missing models, `threads` at a time (0 = hardware).
    void ensure(const std::vector<std::string>& names, int threads = 0)
        RAQ_EXCLUDES(mutex_);

    [[nodiscard]] const std::string& dir() const { return dir_; }
    [[nodiscard]] std::string model_path(const std::string& name) const;

private:
    Network train_and_save(const std::string& name);

    std::string dir_;
    std::unique_ptr<data::SyntheticDataset> dataset_;
    common::Mutex mutex_;
    std::map<std::string, std::unique_ptr<Network>> loaded_ RAQ_GUARDED_BY(mutex_);
};

}  // namespace raq::nn
