#include "nn/network.hpp"

#include <stdexcept>

#include "common/serialize.hpp"

namespace raq::nn {

Network::Network(std::string name, std::unique_ptr<Module> body, tensor::Shape input_shape,
                 int num_classes)
    : name_(std::move(name)), body_(std::move(body)), input_shape_(input_shape),
      num_classes_(num_classes) {
    if (!body_) throw std::invalid_argument("Network: body required");
}

std::vector<Param*> Network::parameters() {
    std::vector<Param*> out;
    body_->collect_params(out);
    return out;
}

std::size_t Network::num_weights() {
    std::size_t total = 0;
    for (const Param* p : parameters()) total += p->value.size();
    return total;
}

ir::Graph Network::export_ir() {
    ir::Graph graph;
    tensor::Shape in = input_shape_;
    in.n = 1;
    const int input_id = graph.add_input(in);
    auto [out_id, out_shape] = body_->append_ir(graph, input_id, in);
    if (out_shape.c != num_classes_ || out_shape.h != 1 || out_shape.w != 1)
        throw std::logic_error(name_ + ": IR output is not (classes,1,1): " +
                               out_shape.to_string());
    graph.set_output(out_id);
    return graph;
}

void Network::save(const std::string& path) {
    common::BinaryWriter writer(path);
    writer.write_u32(common::kSerializeMagic);
    writer.write_string(name_);
    const auto params = parameters();
    writer.write_u64(params.size());
    for (const Param* p : params) {
        writer.write_string(p->name);
        writer.write_f32_vector(p->value);
    }
    if (!writer.good()) throw std::runtime_error("Network::save: write failed " + path);
}

void Network::load(const std::string& path) {
    common::BinaryReader reader(path);
    if (reader.read_u32() != common::kSerializeMagic)
        throw std::runtime_error("Network::load: bad magic in " + path);
    const std::string stored_name = reader.read_string();
    if (stored_name != name_)
        throw std::runtime_error("Network::load: file holds '" + stored_name +
                                 "', expected '" + name_ + "'");
    const auto params = parameters();
    const auto count = reader.read_u64();
    if (count != params.size())
        throw std::runtime_error("Network::load: parameter count mismatch in " + path);
    for (Param* p : params) {
        const std::string pname = reader.read_string();
        if (pname != p->name)
            throw std::runtime_error("Network::load: parameter order mismatch: " + pname +
                                     " vs " + p->name);
        auto values = reader.read_f32_vector();
        if (values.size() != p->value.size())
            throw std::runtime_error("Network::load: size mismatch for " + pname);
        p->value = std::move(values);
    }
}

}  // namespace raq::nn
