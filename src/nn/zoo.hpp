// Model zoo: scaled-down counterparts of the networks the paper evaluates.
//
// Table 1 set (10): ResNet50/101/152, VGG13/16/19, AlexNet,
// SqueezeNet1.1, WideResNet50/101. Fig. 1b set (3): ResNet20/32/44
// (CIFAR-style basic-block ResNets).
//
// Substitution note (DESIGN.md §2): ImageNet-scale weights are not
// reproducible offline; each mini model keeps the family's topology
// (bottleneck vs basic blocks, VGG conv stacks, fire modules, width
// doubling for the wide variants) and the intra-family depth ordering,
// at widths that train on the synthetic task in minutes.
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace raq::nn {

/// The ten networks of the paper's Table 1, in the paper's row order.
[[nodiscard]] std::vector<std::string> paper_networks();

/// The three networks of the paper's Fig. 1b.
[[nodiscard]] std::vector<std::string> fig1b_networks();

/// All known zoo entries.
[[nodiscard]] std::vector<std::string> all_networks();

/// Build an untrained network by zoo name; throws on unknown names.
[[nodiscard]] Network make_network(const std::string& name);

/// Per-network training hyperparameters (BN-free nets need gentler LR).
[[nodiscard]] TrainConfig recommended_train_config(const std::string& name);

}  // namespace raq::nn
