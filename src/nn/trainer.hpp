// SGD-with-momentum trainer and evaluation helpers for the model zoo.
// Training is a one-time cost per network; ModelCache persists the result.
#pragma once

#include <cstdint>

#include "data/synthetic_dataset.hpp"
#include "nn/network.hpp"

namespace raq::nn {

struct TrainConfig {
    int epochs = 4;
    int batch_size = 32;
    double lr = 0.06;
    double momentum = 0.9;
    double weight_decay = 5e-4;
    double lr_decay = 0.4;  ///< multiplicative per-epoch decay after epoch 1
    bool verbose = false;
};

struct TrainResult {
    double final_train_loss = 0.0;
    double test_accuracy = 0.0;
    int epochs_run = 0;
};

/// Softmax cross-entropy on (N, classes, 1, 1) logits. Returns mean loss
/// and writes d(loss)/d(logits) into `grad` (same shape).
double cross_entropy_loss(const tensor::Tensor& logits, const std::vector<int>& labels,
                          tensor::Tensor& grad);

class SgdTrainer {
public:
    explicit SgdTrainer(const TrainConfig& config = {}) : config_(config) {}

    TrainResult fit(Network& net, const data::SyntheticDataset& dataset);

private:
    TrainConfig config_;
};

/// Top-1 accuracy of the (module-level, inference-mode) network.
double evaluate(Network& net, const data::SyntheticDataset& dataset, int max_samples = -1);

}  // namespace raq::nn
