#include "nn/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace raq::nn {

double cross_entropy_loss(const tensor::Tensor& logits, const std::vector<int>& labels,
                          tensor::Tensor& grad) {
    const auto& s = logits.shape();
    if (static_cast<std::size_t>(s.n) != labels.size())
        throw std::invalid_argument("cross_entropy_loss: label count mismatch");
    grad = tensor::Tensor(s);
    double total = 0.0;
    const float inv_n = 1.0f / static_cast<float>(s.n);
    for (int n = 0; n < s.n; ++n) {
        float max_logit = logits.at(n, 0, 0, 0);
        for (int c = 1; c < s.c; ++c) max_logit = std::max(max_logit, logits.at(n, c, 0, 0));
        double denom = 0.0;
        for (int c = 0; c < s.c; ++c)
            denom += std::exp(static_cast<double>(logits.at(n, c, 0, 0) - max_logit));
        const int label = labels[static_cast<std::size_t>(n)];
        const double log_p =
            static_cast<double>(logits.at(n, label, 0, 0) - max_logit) - std::log(denom);
        total -= log_p;
        for (int c = 0; c < s.c; ++c) {
            const double p =
                std::exp(static_cast<double>(logits.at(n, c, 0, 0) - max_logit)) / denom;
            grad.at(n, c, 0, 0) = (static_cast<float>(p) - (c == label ? 1.0f : 0.0f)) * inv_n;
        }
    }
    return total / static_cast<double>(s.n);
}

TrainResult SgdTrainer::fit(Network& net, const data::SyntheticDataset& dataset) {
    const auto params = net.parameters();
    std::vector<std::vector<float>> velocity(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
        velocity[i].assign(params[i]->value.size(), 0.0f);

    double lr = config_.lr;
    TrainResult result;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        const auto order = dataset.epoch_order(epoch);
        double epoch_loss = 0.0;
        int batches = 0;
        for (std::size_t start = 0; start + static_cast<std::size_t>(config_.batch_size) <=
                                    order.size();
             start += static_cast<std::size_t>(config_.batch_size)) {
            std::vector<int> indices(order.begin() + static_cast<long>(start),
                                     order.begin() +
                                         static_cast<long>(start) + config_.batch_size);
            const tensor::Tensor batch = dataset.gather_train(indices);
            std::vector<int> labels(indices.size());
            for (std::size_t i = 0; i < indices.size(); ++i)
                labels[i] = dataset.train_labels()[static_cast<std::size_t>(indices[i])];

            for (Param* p : params) std::fill(p->grad.begin(), p->grad.end(), 0.0f);
            const tensor::Tensor logits = net.forward(batch, /*training=*/true);
            tensor::Tensor grad;
            epoch_loss += cross_entropy_loss(logits, labels, grad);
            ++batches;
            net.backward(grad);

            for (std::size_t i = 0; i < params.size(); ++i) {
                Param* p = params[i];
                if (!p->trainable) continue;
                auto& vel = velocity[i];
                for (std::size_t j = 0; j < p->value.size(); ++j) {
                    const float g = p->grad[j] +
                                    static_cast<float>(config_.weight_decay) * p->value[j];
                    vel[j] = static_cast<float>(config_.momentum) * vel[j] -
                             static_cast<float>(lr) * g;
                    p->value[j] += vel[j];
                }
            }
        }
        result.final_train_loss = batches ? epoch_loss / batches : 0.0;
        result.epochs_run = epoch + 1;
        if (config_.verbose)
            std::fprintf(stderr, "[%s] epoch %d loss %.4f\n", net.name().c_str(), epoch + 1,
                         result.final_train_loss);
        if (epoch >= 1) lr *= config_.lr_decay;
    }
    result.test_accuracy = evaluate(net, dataset);
    return result;
}

double evaluate(Network& net, const data::SyntheticDataset& dataset, int max_samples) {
    const int total = max_samples < 0
                          ? dataset.test_size()
                          : std::min(max_samples, dataset.test_size());
    const int batch = 64;
    std::size_t correct = 0;
    for (int start = 0; start < total; start += batch) {
        const int count = std::min(batch, total - start);
        const tensor::Tensor images = dataset.test_batch(start, count);
        const tensor::Tensor logits = net.forward(images, /*training=*/false);
        for (int n = 0; n < count; ++n) {
            int best = 0;
            float best_v = logits.at(n, 0, 0, 0);
            for (int c = 1; c < logits.shape().c; ++c) {
                if (logits.at(n, c, 0, 0) > best_v) {
                    best_v = logits.at(n, c, 0, 0);
                    best = c;
                }
            }
            correct += (best == dataset.test_labels()[static_cast<std::size_t>(start + n)]);
        }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace raq::nn
