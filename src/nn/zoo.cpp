#include "nn/zoo.hpp"

#include <stdexcept>

namespace raq::nn {

namespace {

constexpr int kClasses = 10;
constexpr int kImage = 16;

std::uint64_t name_seed(const std::string& name) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : name) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void add_conv_bn_relu(Sequential& seq, int in_c, int out_c, int k, int stride, int pad,
                      std::uint64_t& seed, const std::string& name) {
    seq.add(std::make_unique<Conv2d>(in_c, out_c, k, stride, pad, seed++, name));
    seq.add(std::make_unique<BatchNorm2d>(out_c, name + ".bn"));
    seq.add(std::make_unique<ReLU>());
}

std::unique_ptr<Sequential> projection_shortcut(int in_c, int out_c, int stride,
                                                std::uint64_t& seed, const std::string& name) {
    auto sc = std::make_unique<Sequential>();
    sc->add(std::make_unique<Conv2d>(in_c, out_c, 1, stride, 0, seed++, name + ".proj"));
    sc->add(std::make_unique<BatchNorm2d>(out_c, name + ".proj.bn"));
    return sc;
}

/// Bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand (expansion 2),
/// `wide` doubles the inner width (WideResNet style).
std::unique_ptr<ResidualBlock> bottleneck(int in_c, int width, int out_c, int stride,
                                          bool wide, std::uint64_t& seed,
                                          const std::string& name) {
    const int mid = wide ? 2 * width : width;
    auto main = std::make_unique<Sequential>();
    main->add(std::make_unique<Conv2d>(in_c, mid, 1, 1, 0, seed++, name + ".c1"));
    main->add(std::make_unique<BatchNorm2d>(mid, name + ".c1.bn"));
    main->add(std::make_unique<ReLU>());
    main->add(std::make_unique<Conv2d>(mid, mid, 3, stride, 1, seed++, name + ".c2"));
    main->add(std::make_unique<BatchNorm2d>(mid, name + ".c2.bn"));
    main->add(std::make_unique<ReLU>());
    main->add(std::make_unique<Conv2d>(mid, out_c, 1, 1, 0, seed++, name + ".c3"));
    main->add(std::make_unique<BatchNorm2d>(out_c, name + ".c3.bn"));
    std::unique_ptr<Sequential> shortcut;
    if (stride != 1 || in_c != out_c) shortcut = projection_shortcut(in_c, out_c, stride, seed, name);
    return std::make_unique<ResidualBlock>(std::move(main), std::move(shortcut));
}

/// Basic block (CIFAR ResNet20/32/44): two 3x3 convolutions.
std::unique_ptr<ResidualBlock> basic_block(int in_c, int out_c, int stride,
                                           std::uint64_t& seed, const std::string& name) {
    auto main = std::make_unique<Sequential>();
    main->add(std::make_unique<Conv2d>(in_c, out_c, 3, stride, 1, seed++, name + ".c1"));
    main->add(std::make_unique<BatchNorm2d>(out_c, name + ".c1.bn"));
    main->add(std::make_unique<ReLU>());
    main->add(std::make_unique<Conv2d>(out_c, out_c, 3, 1, 1, seed++, name + ".c2"));
    main->add(std::make_unique<BatchNorm2d>(out_c, name + ".c2.bn"));
    std::unique_ptr<Sequential> shortcut;
    if (stride != 1 || in_c != out_c) shortcut = projection_shortcut(in_c, out_c, stride, seed, name);
    return std::make_unique<ResidualBlock>(std::move(main), std::move(shortcut));
}

Network make_bottleneck_resnet(const std::string& name, int base_width,
                               const std::vector<int>& counts, bool wide) {
    std::uint64_t seed = name_seed(name);
    auto body = std::make_unique<Sequential>();
    constexpr int kExpansion = 2;
    add_conv_bn_relu(*body, 3, base_width, 3, 1, 1, seed, name + ".stem");
    int in_c = base_width;
    for (std::size_t stage = 0; stage < counts.size(); ++stage) {
        const int width = base_width << stage;
        const int out_c = width * kExpansion;
        for (int b = 0; b < counts[stage]; ++b) {
            const int stride = (b == 0 && stage > 0) ? 2 : 1;
            body->add(bottleneck(in_c, width, out_c, stride, wide, seed,
                                 name + ".s" + std::to_string(stage) + "b" + std::to_string(b)));
            in_c = out_c;
        }
    }
    body->add(std::make_unique<GlobalAvgPool>());
    body->add(std::make_unique<Linear>(in_c, kClasses, seed++, name + ".fc"));
    return Network(name, std::move(body), {1, 3, kImage, kImage}, kClasses);
}

Network make_basic_resnet(const std::string& name, int blocks_per_stage) {
    std::uint64_t seed = name_seed(name);
    auto body = std::make_unique<Sequential>();
    const int widths[3] = {8, 16, 32};
    add_conv_bn_relu(*body, 3, widths[0], 3, 1, 1, seed, name + ".stem");
    int in_c = widths[0];
    for (int stage = 0; stage < 3; ++stage) {
        for (int b = 0; b < blocks_per_stage; ++b) {
            const int stride = (b == 0 && stage > 0) ? 2 : 1;
            body->add(basic_block(in_c, widths[stage], stride, seed,
                                  name + ".s" + std::to_string(stage) + "b" + std::to_string(b)));
            in_c = widths[stage];
        }
    }
    body->add(std::make_unique<GlobalAvgPool>());
    body->add(std::make_unique<Linear>(in_c, kClasses, seed++, name + ".fc"));
    return Network(name, std::move(body), {1, 3, kImage, kImage}, kClasses);
}

Network make_vgg(const std::string& name, const std::vector<int>& counts) {
    std::uint64_t seed = name_seed(name);
    const int widths[4] = {8, 16, 32, 48};
    auto body = std::make_unique<Sequential>();
    int in_c = 3;
    for (std::size_t stage = 0; stage < counts.size(); ++stage) {
        for (int b = 0; b < counts[stage]; ++b) {
            add_conv_bn_relu(*body, in_c, widths[stage], 3, 1, 1, seed,
                             name + ".s" + std::to_string(stage) + "c" + std::to_string(b));
            in_c = widths[stage];
        }
        body->add(std::make_unique<MaxPool2d>(2, 2));
    }
    // After 4 pools: 16 -> 1, features = widths[3].
    body->add(std::make_unique<Linear>(widths[3], 64, seed++, name + ".fc1"));
    body->add(std::make_unique<ReLU>());
    body->add(std::make_unique<Linear>(64, kClasses, seed++, name + ".fc2"));
    return Network(name, std::move(body), {1, 3, kImage, kImage}, kClasses);
}

/// BN-free nets train less gracefully; a small positive bias keeps the
/// first ReLUs alive at initialization.
void warm_bias(Network& net, float value) {
    for (Param* p : net.parameters())
        if (p->name.find(".bias") != std::string::npos ||
            p->name.find("fc") != std::string::npos) {
            if (p->name.size() >= 5 && p->name.compare(p->name.size() - 5, 5, ".bias") == 0)
                std::fill(p->value.begin(), p->value.end(), value);
        }
}

Network make_alexnet(const std::string& name) {
    // BatchNorm is a training aid here (the original AlexNet has none);
    // it is folded into the convolutions at IR export, so the deployed
    // graph matches the original conv+ReLU topology (DESIGN.md §6).
    std::uint64_t seed = name_seed(name);
    auto body = std::make_unique<Sequential>();
    auto conv_relu = [&](int in_c, int out_c, const std::string& cname) {
        body->add(std::make_unique<Conv2d>(in_c, out_c, 3, 1, 1, seed++, cname));
        body->add(std::make_unique<BatchNorm2d>(out_c, cname + ".bn"));
        body->add(std::make_unique<ReLU>());
    };
    conv_relu(3, 16, name + ".c1");
    body->add(std::make_unique<MaxPool2d>(2, 2));  // 16 -> 8
    conv_relu(16, 32, name + ".c2");
    body->add(std::make_unique<MaxPool2d>(2, 2));  // 8 -> 4
    conv_relu(32, 48, name + ".c3");
    conv_relu(48, 32, name + ".c4");
    conv_relu(32, 32, name + ".c5");
    body->add(std::make_unique<MaxPool2d>(2, 2));  // 4 -> 2
    body->add(std::make_unique<Linear>(32 * 2 * 2, 64, seed++, name + ".fc1"));
    body->add(std::make_unique<ReLU>());
    body->add(std::make_unique<Linear>(64, kClasses, seed++, name + ".fc2"));
    Network net(name, std::move(body), {1, 3, kImage, kImage}, kClasses);
    warm_bias(net, 0.05f);
    return net;
}

Network make_squeezenet(const std::string& name) {
    // Like AlexNet above: BN as a training aid, folded at export so the
    // deployed graph keeps the original fire-module topology.
    std::uint64_t seed = name_seed(name);
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<Conv2d>(3, 24, 3, 1, 1, seed++, name + ".stem"));
    body->add(std::make_unique<BatchNorm2d>(24, name + ".stem.bn"));
    body->add(std::make_unique<ReLU>());
    body->add(std::make_unique<MaxPool2d>(2, 2));  // 16 -> 8
    body->add(std::make_unique<FireModule>(24, 8, 16, seed++, name + ".fire1", true));   // -> 32
    body->add(std::make_unique<FireModule>(32, 8, 16, seed++, name + ".fire2", true));   // -> 32
    body->add(std::make_unique<MaxPool2d>(2, 2));  // 8 -> 4
    body->add(std::make_unique<FireModule>(32, 12, 24, seed++, name + ".fire3", true));  // -> 48
    body->add(std::make_unique<FireModule>(48, 12, 24, seed++, name + ".fire4", true));  // -> 48
    body->add(std::make_unique<MaxPool2d>(2, 2));  // 4 -> 2
    body->add(std::make_unique<FireModule>(48, 16, 32, seed++, name + ".fire5", true));  // -> 64
    body->add(std::make_unique<FireModule>(64, 16, 32, seed++, name + ".fire6", true));  // -> 64
    // torchvision-style classifier: 1x1 conv to classes, ReLU, then GAP.
    body->add(std::make_unique<Conv2d>(64, kClasses, 1, 1, 0, seed++, name + ".classifier"));
    body->add(std::make_unique<ReLU>());
    body->add(std::make_unique<GlobalAvgPool>());
    Network net(name, std::move(body), {1, 3, kImage, kImage}, kClasses);
    warm_bias(net, 0.10f);
    return net;
}

}  // namespace

std::vector<std::string> paper_networks() {
    return {"resnet50-mini",  "resnet101-mini",     "resnet152-mini",
            "vgg13-mini",     "vgg16-mini",         "vgg19-mini",
            "alexnet-mini",   "squeezenet1.1-mini", "wide-resnet50-mini",
            "wide-resnet101-mini"};
}

std::vector<std::string> fig1b_networks() {
    return {"resnet20-mini", "resnet32-mini", "resnet44-mini"};
}

std::vector<std::string> all_networks() {
    auto all = paper_networks();
    for (auto& n : fig1b_networks()) all.push_back(n);
    return all;
}

Network make_network(const std::string& name) {
    if (name == "resnet50-mini") return make_bottleneck_resnet(name, 8, {2, 3, 2}, false);
    if (name == "resnet101-mini") return make_bottleneck_resnet(name, 8, {2, 6, 3}, false);
    if (name == "resnet152-mini") return make_bottleneck_resnet(name, 8, {3, 8, 4}, false);
    if (name == "wide-resnet50-mini") return make_bottleneck_resnet(name, 8, {2, 3, 2}, true);
    if (name == "wide-resnet101-mini") return make_bottleneck_resnet(name, 8, {2, 6, 3}, true);
    if (name == "vgg13-mini") return make_vgg(name, {2, 2, 2, 2});
    if (name == "vgg16-mini") return make_vgg(name, {2, 2, 3, 3});
    if (name == "vgg19-mini") return make_vgg(name, {2, 2, 4, 4});
    if (name == "alexnet-mini") return make_alexnet(name);
    if (name == "squeezenet1.1-mini") return make_squeezenet(name);
    if (name == "resnet20-mini") return make_basic_resnet(name, 3);
    if (name == "resnet32-mini") return make_basic_resnet(name, 5);
    if (name == "resnet44-mini") return make_basic_resnet(name, 7);
    throw std::invalid_argument("make_network: unknown model '" + name + "'");
}

TrainConfig recommended_train_config(const std::string& name) {
    TrainConfig cfg;
    if (name == "alexnet-mini" || name == "squeezenet1.1-mini") {
        cfg.epochs = 6;
    }
    return cfg;
}

}  // namespace raq::nn
