// A named, trainable network: module tree + input/output metadata,
// weight (de)serialization and lowering to the deployment IR.
#pragma once

#include <memory>
#include <string>

#include "nn/composite.hpp"

namespace raq::nn {

class Network {
public:
    Network(std::string name, std::unique_ptr<Module> body, tensor::Shape input_shape,
            int num_classes);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const tensor::Shape& input_shape() const { return input_shape_; }
    [[nodiscard]] int num_classes() const { return num_classes_; }

    tensor::Tensor forward(const tensor::Tensor& x, bool training = false) {
        return body_->forward(x, training);
    }
    tensor::Tensor backward(const tensor::Tensor& grad) { return body_->backward(grad); }

    [[nodiscard]] std::vector<Param*> parameters();
    [[nodiscard]] std::size_t num_weights();

    /// Lower to the deployment IR with BN folding.
    [[nodiscard]] ir::Graph export_ir();

    void save(const std::string& path);
    /// Load weights saved by save(); parameter names/sizes must match.
    void load(const std::string& path);

private:
    std::string name_;
    std::unique_ptr<Module> body_;
    tensor::Shape input_shape_;
    int num_classes_;
};

}  // namespace raq::nn
