// Trainable NN layers with hand-written backpropagation (PyTorch
// substitute, DESIGN.md §2). Each module caches what it needs from the
// last forward pass; backward() must be called with the gradient of the
// loss w.r.t. that forward's output.
//
// Every module can also lower itself into the deployment IR (ir::Graph);
// Sequential fuses Conv2d + BatchNorm2d pairs during lowering (BN
// folding), which is what the post-training quantization flow consumes.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/graph.hpp"
#include "tensor/tensor.hpp"

namespace raq::nn {

struct Param {
    std::vector<float> value;
    std::vector<float> grad;
    bool trainable = true;
    std::string name;

    void resize(std::size_t n) {
        value.assign(n, 0.0f);
        grad.assign(n, 0.0f);
    }
};

class Module {
public:
    virtual ~Module() = default;

    virtual tensor::Tensor forward(const tensor::Tensor& x, bool training) = 0;
    virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

    /// Collect parameter (and buffer) pointers in a deterministic order.
    virtual void collect_params(std::vector<Param*>& out) { (void)out; }

    /// Lower into the IR: returns (output tensor id, output shape).
    virtual std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                                    tensor::Shape input_shape) const = 0;

    [[nodiscard]] virtual bool is_batchnorm() const { return false; }
};

/// Kaiming-normal initialization shared by conv/linear layers.
void kaiming_init(std::vector<float>& weights, std::size_t fan_in, std::uint64_t seed);

class Conv2d : public Module {
public:
    Conv2d(int in_c, int out_c, int kernel, int stride, int pad, std::uint64_t seed,
           std::string name = "conv");

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

    /// Lowering with a following BatchNorm folded into weights/bias.
    std::pair<int, tensor::Shape> append_ir_folded(ir::Graph& graph, int input_id,
                                                   tensor::Shape input_shape,
                                                   const class BatchNorm2d& bn) const;

    [[nodiscard]] int out_channels() const { return out_c_; }

    Param weight;  ///< [out_c][in_c*k*k]
    Param bias;    ///< [out_c]

private:
    int in_c_, out_c_, kernel_, stride_, pad_;
    std::string name_;
    tensor::Tensor cached_input_;
};

class BatchNorm2d : public Module {
public:
    explicit BatchNorm2d(int channels, std::string name = "bn");

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;
    [[nodiscard]] bool is_batchnorm() const override { return true; }

    /// Effective per-channel affine (scale, shift) for folding:
    /// y = scale * x + shift with running statistics.
    void folded_affine(std::vector<float>& scale, std::vector<float>& shift) const;

    Param gamma, beta;
    Param running_mean, running_var;  ///< buffers (trainable = false)

private:
    int channels_;
    std::string name_;
    float momentum_ = 0.2f;
    float eps_ = 1e-5f;
    // caches for backward
    tensor::Tensor cached_xhat_;
    std::vector<float> cached_invstd_;
};

class ReLU : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

private:
    std::vector<bool> mask_;
};

class MaxPool2d : public Module {
public:
    explicit MaxPool2d(int kernel = 2, int stride = 2) : kernel_(kernel), stride_(stride) {}

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

private:
    int kernel_, stride_;
    tensor::Shape in_shape_;
    std::vector<std::size_t> argmax_;  ///< linear input index per output element
};

class GlobalAvgPool : public Module {
public:
    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

private:
    tensor::Shape in_shape_;
};

/// Fully connected layer over the flattened (C,H,W) features. Lowered to
/// a Conv2d whose kernel covers the full spatial extent, so the NPU/
/// quantization stack sees a single MAC op kind.
class Linear : public Module {
public:
    Linear(int in_features, int out_features, std::uint64_t seed, std::string name = "fc");

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

    Param weight;  ///< [out][in]
    Param bias;    ///< [out]

private:
    int in_features_, out_features_;
    std::string name_;
    tensor::Tensor cached_input_;
};

}  // namespace raq::nn
