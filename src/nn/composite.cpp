#include "nn/composite.hpp"

#include <stdexcept>

namespace raq::nn {

// ------------------------------------------------------------ Sequential

tensor::Tensor Sequential::forward(const tensor::Tensor& x, bool training) {
    tensor::Tensor cur = x;
    for (auto& child : children_) cur = child->forward(cur, training);
    return cur;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_out) {
    tensor::Tensor cur = grad_out;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

void Sequential::collect_params(std::vector<Param*>& out) {
    for (auto& child : children_) child->collect_params(out);
}

std::pair<int, tensor::Shape> Sequential::append_ir(ir::Graph& graph, int input_id,
                                                    tensor::Shape input_shape) const {
    int id = input_id;
    tensor::Shape shape = input_shape;
    for (std::size_t i = 0; i < children_.size(); ++i) {
        // BN folding: a Conv2d immediately followed by BatchNorm2d lowers
        // into one conv with scaled weights/bias.
        if (i + 1 < children_.size() && children_[i + 1]->is_batchnorm()) {
            if (const auto* conv = dynamic_cast<const Conv2d*>(children_[i].get())) {
                const auto& bn = dynamic_cast<const BatchNorm2d&>(*children_[i + 1]);
                std::tie(id, shape) = conv->append_ir_folded(graph, id, shape, bn);
                ++i;  // consume the BN
                continue;
            }
        }
        std::tie(id, shape) = children_[i]->append_ir(graph, id, shape);
    }
    return {id, shape};
}

// --------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(std::unique_ptr<Sequential> main,
                             std::unique_ptr<Sequential> shortcut)
    : main_(std::move(main)), shortcut_(std::move(shortcut)) {
    if (!main_) throw std::invalid_argument("ResidualBlock: main path required");
}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& x, bool training) {
    tensor::Tensor m = main_->forward(x, training);
    tensor::Tensor s = shortcut_ ? shortcut_->forward(x, training) : x;
    if (m.size() != s.size())
        throw std::invalid_argument("ResidualBlock: main/shortcut shape mismatch");
    for (std::size_t i = 0; i < m.size(); ++i) m[i] += s[i];
    return relu_.forward(m, training);
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_out) {
    const tensor::Tensor g = relu_.backward(grad_out);
    tensor::Tensor grad_main = main_->backward(g);
    if (shortcut_) {
        const tensor::Tensor grad_short = shortcut_->backward(g);
        for (std::size_t i = 0; i < grad_main.size(); ++i) grad_main[i] += grad_short[i];
    } else {
        for (std::size_t i = 0; i < grad_main.size(); ++i) grad_main[i] += g[i];
    }
    return grad_main;
}

void ResidualBlock::collect_params(std::vector<Param*>& out) {
    main_->collect_params(out);
    if (shortcut_) shortcut_->collect_params(out);
}

std::pair<int, tensor::Shape> ResidualBlock::append_ir(ir::Graph& graph, int input_id,
                                                       tensor::Shape input_shape) const {
    auto [main_id, main_shape] = main_->append_ir(graph, input_id, input_shape);
    int short_id = input_id;
    if (shortcut_) {
        auto [sid, sshape] = shortcut_->append_ir(graph, input_id, input_shape);
        short_id = sid;
        if (!(sshape == main_shape))
            throw std::invalid_argument("ResidualBlock: IR shape mismatch");
    }
    ir::Op add;
    add.kind = ir::OpKind::Add;
    add.inputs = {main_id, short_id};
    add.name = "residual-add";
    const int add_id = graph.add(std::move(add));
    ir::Op relu;
    relu.kind = ir::OpKind::Relu;
    relu.inputs = {add_id};
    relu.name = "relu";
    return {graph.add(std::move(relu)), main_shape};
}

// ------------------------------------------------------------ FireModule

namespace {

std::unique_ptr<Sequential> conv_relu(int in_c, int out_c, int k, int pad,
                                      std::uint64_t seed, const std::string& name,
                                      bool with_bn) {
    auto seq = std::make_unique<Sequential>();
    seq->add(std::make_unique<Conv2d>(in_c, out_c, k, 1, pad, seed, name));
    if (with_bn) seq->add(std::make_unique<BatchNorm2d>(out_c, name + ".bn"));
    seq->add(std::make_unique<ReLU>());
    return seq;
}

}  // namespace

FireModule::FireModule(int in_c, int squeeze_c, int expand_c, std::uint64_t seed,
                       const std::string& name, bool with_bn)
    : expand_c_(expand_c),
      squeeze_(),
      expand1_(),
      expand3_() {
    squeeze_ =
        std::move(*conv_relu(in_c, squeeze_c, 1, 0, seed * 3 + 1, name + ".squeeze", with_bn));
    expand1_ = std::move(
        *conv_relu(squeeze_c, expand_c, 1, 0, seed * 3 + 2, name + ".expand1", with_bn));
    expand3_ = std::move(
        *conv_relu(squeeze_c, expand_c, 3, 1, seed * 3 + 3, name + ".expand3", with_bn));
}

tensor::Tensor FireModule::forward(const tensor::Tensor& x, bool training) {
    const tensor::Tensor sq = squeeze_.forward(x, training);
    const tensor::Tensor a = expand1_.forward(sq, training);
    const tensor::Tensor b = expand3_.forward(sq, training);
    const auto& s = a.shape();
    tensor::Tensor out({s.n, 2 * expand_c_, s.h, s.w});
    const std::size_t hw = static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w);
    const std::size_t block = static_cast<std::size_t>(expand_c_) * hw;
    for (int n = 0; n < s.n; ++n) {
        std::copy(a.data() + static_cast<std::size_t>(n) * block,
                  a.data() + static_cast<std::size_t>(n + 1) * block,
                  out.data() + static_cast<std::size_t>(n) * 2 * block);
        std::copy(b.data() + static_cast<std::size_t>(n) * block,
                  b.data() + static_cast<std::size_t>(n + 1) * block,
                  out.data() + static_cast<std::size_t>(n) * 2 * block + block);
    }
    return out;
}

tensor::Tensor FireModule::backward(const tensor::Tensor& grad_out) {
    const auto& s = grad_out.shape();
    const int half = expand_c_;
    const std::size_t hw = static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w);
    const std::size_t block = static_cast<std::size_t>(half) * hw;
    tensor::Tensor ga({s.n, half, s.h, s.w});
    tensor::Tensor gb({s.n, half, s.h, s.w});
    for (int n = 0; n < s.n; ++n) {
        std::copy(grad_out.data() + static_cast<std::size_t>(n) * 2 * block,
                  grad_out.data() + static_cast<std::size_t>(n) * 2 * block + block,
                  ga.data() + static_cast<std::size_t>(n) * block);
        std::copy(grad_out.data() + static_cast<std::size_t>(n) * 2 * block + block,
                  grad_out.data() + static_cast<std::size_t>(n + 1) * 2 * block,
                  gb.data() + static_cast<std::size_t>(n) * block);
    }
    tensor::Tensor gsq = expand1_.backward(ga);
    const tensor::Tensor gsq3 = expand3_.backward(gb);
    for (std::size_t i = 0; i < gsq.size(); ++i) gsq[i] += gsq3[i];
    return squeeze_.backward(gsq);
}

void FireModule::collect_params(std::vector<Param*>& out) {
    squeeze_.collect_params(out);
    expand1_.collect_params(out);
    expand3_.collect_params(out);
}

std::pair<int, tensor::Shape> FireModule::append_ir(ir::Graph& graph, int input_id,
                                                    tensor::Shape input_shape) const {
    auto [sq_id, sq_shape] = squeeze_.append_ir(graph, input_id, input_shape);
    auto [a_id, a_shape] = expand1_.append_ir(graph, sq_id, sq_shape);
    auto [b_id, b_shape] = expand3_.append_ir(graph, sq_id, sq_shape);
    if (!(a_shape == b_shape)) throw std::logic_error("FireModule: expand shape mismatch");
    ir::Op cat;
    cat.kind = ir::OpKind::Concat;
    cat.inputs = {a_id, b_id};
    cat.name = "fire-concat";
    tensor::Shape out = a_shape;
    out.c = 2 * expand_c_;
    return {graph.add(std::move(cat)), out};
}

}  // namespace raq::nn
