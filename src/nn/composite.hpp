// Composite modules: Sequential containers, residual blocks (ResNet /
// WideResNet families) and fire modules (SqueezeNet). These mirror the
// topologies of the ten torchvision networks the paper evaluates.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace raq::nn {

class Sequential : public Module {
public:
    Sequential() = default;
    explicit Sequential(std::vector<std::unique_ptr<Module>> children)
        : children_(std::move(children)) {}

    void add(std::unique_ptr<Module> child) { children_.push_back(std::move(child)); }

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;

    /// Lowers children in order, folding Conv2d + BatchNorm2d pairs.
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

    [[nodiscard]] std::size_t size() const { return children_.size(); }

private:
    std::vector<std::unique_ptr<Module>> children_;
};

/// Residual block: out = ReLU(main(x) + shortcut(x)). The shortcut is the
/// identity when null (shapes must then match).
class ResidualBlock : public Module {
public:
    ResidualBlock(std::unique_ptr<Sequential> main, std::unique_ptr<Sequential> shortcut);

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

private:
    std::unique_ptr<Sequential> main_;
    std::unique_ptr<Sequential> shortcut_;  ///< null = identity
    ReLU relu_;
};

/// SqueezeNet fire module: squeeze 1x1 conv, then parallel 1x1 / 3x3
/// expand convolutions concatenated along channels. `with_bn` inserts
/// BatchNorm after each conv as a training aid; it is folded away during
/// IR export, so the deployed topology matches the original fire module.
class FireModule : public Module {
public:
    FireModule(int in_c, int squeeze_c, int expand_c, std::uint64_t seed,
               const std::string& name, bool with_bn = false);

    tensor::Tensor forward(const tensor::Tensor& x, bool training) override;
    tensor::Tensor backward(const tensor::Tensor& grad_out) override;
    void collect_params(std::vector<Param*>& out) override;
    std::pair<int, tensor::Shape> append_ir(ir::Graph& graph, int input_id,
                                            tensor::Shape input_shape) const override;

    [[nodiscard]] int out_channels() const { return 2 * expand_c_; }

private:
    int expand_c_;
    Sequential squeeze_;
    Sequential expand1_;
    Sequential expand3_;
};

}  // namespace raq::nn
