// Wire protocol of the net front-end: a length-prefixed binary RPC,
// little-endian, no external dependencies. See src/net/README.md for
// the byte-level layout and backpressure semantics.
//
// Framing: every message is `u32 length | payload` where `length` is
// the payload byte count (the prefix excludes itself). Requests open
// with `u8 op | u64 tag`; the tag is opaque to the server and echoed
// verbatim on the response, so clients may pipeline many requests per
// connection and match completions out of order.
//
// The INFER payload carries the image as u8 quantized samples plus an
// affine (scale, zero_point) pair; both ends reconstruct floats through
// the ONE shared dequant() below, which is what makes socket-served
// results bit-identical to in-process submission of the same
// reconstructed tensor. On the server this dequantization writes
// straight into the `tensor::Tensor` the batcher consumes — the
// zero-copy hand-off: payload bytes → tensor storage, no intermediate
// image buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace raq::net {

/// Request opcodes.
enum class Op : std::uint8_t {
    Infer = 1,       ///< one sample → logits + serving metadata
    Metrics = 2,     ///< Prometheus-style scrape of the server's registry
    /// Versioned INFER frame: identical to Infer with one `u8 class`
    /// byte between the tag and the header (0 = interactive, 1 = batch —
    /// serve::RequestClass values). Plain-Infer frames from old clients
    /// default to the interactive lane; the OK response shape is shared.
    InferClass = 3,
};

/// Response status. Busy and ShuttingDown are the admission-control
/// outcomes: the request was *answered*, not buffered — nothing is ever
/// silently dropped or blackholed.
enum class Status : std::uint8_t {
    Ok = 0,
    Busy = 1,          ///< queue saturated; retry with backoff
    ShuttingDown = 2,  ///< drain in progress; connection closes after the flush
    BadRequest = 3,    ///< malformed frame / unknown op / wrong model id
    Error = 4,         ///< accepted but failed while serving (detail in payload)
};

/// Hard ceiling on one frame's payload: a 256×128×128 u8 image is
/// ~4 MB; anything larger is a protocol error, not an allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

/// Fixed-size INFER request header that follows `op | tag`.
struct InferHeader {
    std::uint32_t model_id = 0;
    std::uint16_t c = 0, h = 0, w = 0;
    float scale = 1.0f;
    float zero_point = 0.0f;
};

/// The one u8→float reconstruction both ends share. The server parses
/// payload bytes through this straight into the tensor it submits; a
/// client that wants the bit-identical in-process reference applies the
/// same function to the same bytes.
[[nodiscard]] inline float dequant(std::uint8_t byte, float scale, float zero_point) {
    return (static_cast<float>(byte) - zero_point) * scale;
}

// ---- little-endian scalar packing over a byte vector -----------------
// memcpy-based: safe on any alignment, compiles to plain loads/stores
// on the little-endian targets this runs on.

inline void put_u8(std::vector<std::uint8_t>& buf, std::uint8_t v) { buf.push_back(v); }

template <typename T>
inline void put_scalar(std::vector<std::uint8_t>& buf, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buf.size();
    buf.resize(at + sizeof(T));
    std::memcpy(buf.data() + at, &v, sizeof(T));
}

inline void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) { put_scalar(buf, v); }
inline void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) { put_scalar(buf, v); }
inline void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) { put_scalar(buf, v); }
inline void put_i32(std::vector<std::uint8_t>& buf, std::int32_t v) { put_scalar(buf, v); }
inline void put_f32(std::vector<std::uint8_t>& buf, float v) { put_scalar(buf, v); }
inline void put_f64(std::vector<std::uint8_t>& buf, double v) { put_scalar(buf, v); }

/// Bounds-checked little-endian reader over a received payload. All
/// reads return false past the end instead of touching out-of-range
/// bytes; the caller maps that to Status::BadRequest.
class Reader {
public:
    Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

    template <typename T>
    bool read(T& out) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (size_ - pos_ < sizeof(T)) return false;
        std::memcpy(&out, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return true;
    }

    /// Borrow `n` raw bytes (no copy); valid while the payload lives.
    bool bytes(std::size_t n, const std::uint8_t*& out) {
        if (size_ - pos_ < n) return false;
        out = data_ + pos_;
        pos_ += n;
        return true;
    }

    [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ---- request encoding (client side) ----------------------------------

/// Append one framed INFER request for a u8-quantized sample.
inline void encode_infer_request(std::vector<std::uint8_t>& out, std::uint64_t tag,
                                 const InferHeader& hdr,
                                 const std::vector<std::uint8_t>& payload) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        1 + 8 + 4 + 3 * 2 + 2 * 4 + payload.size());
    put_u32(out, len);
    put_u8(out, static_cast<std::uint8_t>(Op::Infer));
    put_u64(out, tag);
    put_u32(out, hdr.model_id);
    put_u16(out, hdr.c);
    put_u16(out, hdr.h);
    put_u16(out, hdr.w);
    put_f32(out, hdr.scale);
    put_f32(out, hdr.zero_point);
    out.insert(out.end(), payload.begin(), payload.end());
}

/// Append one framed class-tagged INFER request (Op::InferClass).
/// `request_class` is a serve::RequestClass value as a plain byte — the
/// protocol stays serve-independent.
inline void encode_infer_class_request(std::vector<std::uint8_t>& out,
                                       std::uint64_t tag, std::uint8_t request_class,
                                       const InferHeader& hdr,
                                       const std::vector<std::uint8_t>& payload) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        1 + 8 + 1 + 4 + 3 * 2 + 2 * 4 + payload.size());
    put_u32(out, len);
    put_u8(out, static_cast<std::uint8_t>(Op::InferClass));
    put_u64(out, tag);
    put_u8(out, request_class);
    put_u32(out, hdr.model_id);
    put_u16(out, hdr.c);
    put_u16(out, hdr.h);
    put_u16(out, hdr.w);
    put_f32(out, hdr.scale);
    put_f32(out, hdr.zero_point);
    out.insert(out.end(), payload.begin(), payload.end());
}

/// Append one framed METRICS request.
inline void encode_metrics_request(std::vector<std::uint8_t>& out, std::uint64_t tag) {
    put_u32(out, 1 + 8);
    put_u8(out, static_cast<std::uint8_t>(Op::Metrics));
    put_u64(out, tag);
}

// ---- response encoding (server side) ---------------------------------

/// Serving metadata echoed with OK infer responses.
struct InferReply {
    std::int32_t predicted_class = -1;
    std::uint32_t device_id = 0;
    std::uint64_t generation = 0;
    std::uint64_t partition = 0;
    double latency_us = 0.0;
    std::vector<float> logits;
};

inline void encode_infer_response(std::vector<std::uint8_t>& out, std::uint64_t tag,
                                  const InferReply& r) {
    const std::uint32_t len = static_cast<std::uint32_t>(
        1 + 8 + 4 + 4 + 8 + 8 + 8 + 4 + 4 * r.logits.size());
    put_u32(out, len);
    put_u8(out, static_cast<std::uint8_t>(Status::Ok));
    put_u64(out, tag);
    put_i32(out, r.predicted_class);
    put_u32(out, r.device_id);
    put_u64(out, r.generation);
    put_u64(out, r.partition);
    put_f64(out, r.latency_us);
    put_u32(out, static_cast<std::uint32_t>(r.logits.size()));
    for (const float v : r.logits) put_f32(out, v);
}

/// Non-OK responses and the METRICS scrape share one shape: status, tag,
/// and a length-prefixed byte blob (error detail / exposition text).
inline void encode_blob_response(std::vector<std::uint8_t>& out, Status status,
                                 std::uint64_t tag, const std::string& blob) {
    const std::uint32_t len = static_cast<std::uint32_t>(1 + 8 + 4 + blob.size());
    put_u32(out, len);
    put_u8(out, static_cast<std::uint8_t>(status));
    put_u64(out, tag);
    put_u32(out, static_cast<std::uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
}

// ---- response decoding (client side) ---------------------------------
// An OK response's body shape depends on the op of the request it
// answers (INFER → reply fields + logits, METRICS → byte blob), and the
// client knows which op each tag carried — so decoding is explicit per
// expected shape rather than guessed from byte counts.

/// One decoded response frame.
struct Response {
    Status status = Status::Error;
    std::uint64_t tag = 0;
    InferReply infer;   ///< populated when status == Ok on an INFER tag
    std::string blob;   ///< error detail or METRICS exposition text
};

/// Decode one response payload (the bytes after the u32 length prefix)
/// for a tag the client sent as `op`. Returns false on a malformed
/// frame. Non-OK statuses always carry the blob shape regardless of op.
inline bool decode_response(const std::uint8_t* data, std::size_t size, Op op,
                            Response& out) {
    Reader r(data, size);
    std::uint8_t status_byte = 0;
    if (!r.read(status_byte) || !r.read(out.tag)) return false;
    if (status_byte > static_cast<std::uint8_t>(Status::Error)) return false;
    out.status = static_cast<Status>(status_byte);
    if (out.status == Status::Ok && (op == Op::Infer || op == Op::InferClass)) {
        std::uint32_t n_logits = 0;
        if (!r.read(out.infer.predicted_class) || !r.read(out.infer.device_id) ||
            !r.read(out.infer.generation) || !r.read(out.infer.partition) ||
            !r.read(out.infer.latency_us) || !r.read(n_logits) ||
            r.remaining() != 4u * n_logits)
            return false;
        out.infer.logits.resize(n_logits);
        for (std::uint32_t i = 0; i < n_logits; ++i)
            if (!r.read(out.infer.logits[i])) return false;
        return true;
    }
    std::uint32_t blob_len = 0;
    if (!r.read(blob_len) || r.remaining() != blob_len) return false;
    const std::uint8_t* bytes = nullptr;
    if (!r.bytes(blob_len, bytes)) return false;
    out.blob.assign(reinterpret_cast<const char*>(bytes), blob_len);
    return true;
}

}  // namespace raq::net
