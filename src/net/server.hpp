// net::Server — the epoll network front-end over NpuServer.
//
// Topology: one acceptor thread (poll on the listening socket, 100 ms
// tick to observe the stop flag) hands accepted connections round-robin
// to `num_loops` event-loop threads. Each loop owns an epoll instance,
// an eventfd for cross-thread wakes, and the full lifecycle of its
// connections: non-blocking reads feed a per-connection reassembly
// buffer, complete frames are parsed **directly into the tensor the
// batcher will consume** (the zero-copy hand-off — payload bytes are
// dequantized straight into `tensor::Tensor` storage, no intermediate
// image buffer), and `NpuServer::try_submit` admits or sheds them.
//
// Admission control rides the BoundedChannel close-and-drain protocol:
//   try_submit == Saturated  → immediate BUSY response (shed, counted)
//   try_submit == Closed / draining → SHUTTING_DOWN response
//   accepted → the request's on_done hook posts a completion to the
//     owning loop and writes its eventfd; the loop serializes the
//     response when the future is ready. No loop thread ever blocks on
//     a future, a lock held across a build, or a full socket (writes
//     spill to a per-connection buffer flushed on EPOLLOUT).
//
// Shutdown cascade (stop()): close the listener (no new connections) →
// mark draining (new INFERs answered SHUTTING_DOWN, in-flight requests
// keep their promises) → loops run until every in-flight request has
// resolved and every response buffer has flushed (bounded by
// `drain_deadline_ms`) → join. The NpuServer must stay alive until
// stop() returns — it is what resolves the in-flight futures.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace raq::net {

struct NetConfig {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral: the kernel picks a free port, readable via port().
    std::uint16_t port = 0;
    int num_loops = 2;        ///< event-loop worker threads
    std::uint32_t model_id = 1;  ///< the single model this front-end serves
    std::uint32_t max_frame_bytes = kMaxFrameBytes;
    int backlog = 128;
    /// Upper bound on the post-stop drain (in-flight futures + response
    /// flush); connections still open past it are closed hard.
    int drain_deadline_ms = 5000;
};

/// Front-end counters, readable any time (atomics — works with server
/// telemetry off; with telemetry on the same figures export as
/// `raq_net_*` series).
struct NetStats {
    std::uint64_t connections = 0;       ///< accepted since start
    std::uint64_t requests = 0;          ///< frames parsed (INFER + METRICS)
    std::uint64_t responses = 0;         ///< responses fully serialized
    std::uint64_t shed = 0;              ///< BUSY responses (queue saturated)
    std::uint64_t shutdown_rejects = 0;  ///< SHUTTING_DOWN responses
    std::uint64_t protocol_errors = 0;   ///< malformed frames (connection closed)
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
};

class Server {
public:
    /// Binds, listens and starts the acceptor + event-loop threads.
    /// `npu` must outlive stop()/destruction. Throws std::runtime_error
    /// when the socket cannot be bound.
    Server(serve::NpuServer& npu, const NetConfig& config);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bound port (== config.port unless ephemeral).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Run the shutdown cascade and join all threads. Idempotent. The
    /// NpuServer keeps running — callers shut it down afterwards.
    void stop();

    [[nodiscard]] NetStats stats() const;

private:
    struct EventLoop;
    friend struct EventLoop;

    void acceptor_loop();
    void register_metrics();

    serve::NpuServer& npu_;
    const NetConfig config_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    /// Draining: admission answers SHUTTING_DOWN. Set before the loops
    /// begin their in-flight drain.
    std::atomic<bool> draining_{false};

    std::vector<std::unique_ptr<EventLoop>> loops_;
    std::thread acceptor_;
    std::atomic<std::size_t> next_loop_{0};

    // Atomic front-end counters (see NetStats).
    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> responses_{0};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> shutdown_rejects_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> bytes_read_{0};
    std::atomic<std::uint64_t> bytes_written_{0};

    /// Mirrored registry instruments (null with telemetry off).
    obs::Counter* m_connections_ = nullptr;
    obs::Gauge* m_active_ = nullptr;
    obs::Counter* m_requests_ = nullptr;
    obs::Counter* m_responses_ = nullptr;
    obs::Counter* m_shed_ = nullptr;
    obs::Counter* m_protocol_errors_ = nullptr;
    obs::Counter* m_bytes_read_ = nullptr;
    obs::Counter* m_bytes_written_ = nullptr;
    obs::Histogram* m_socket_wait_us_ = nullptr;
    /// Rate limit for NetOverload timeline events (µs of last record).
    std::atomic<std::int64_t> last_overload_event_us_{-1'000'000};
};

}  // namespace raq::net
