#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/clock.hpp"

namespace raq::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One request admitted on a connection, awaiting its future.
struct InFlight {
    std::uint64_t tag = 0;
    std::uint64_t seq = 0;  ///< loop-unique id the completion hook posts back
    std::future<serve::InferenceResult> future;
};

/// Per-connection non-blocking read/write state machine. Owned by
/// exactly one event loop; never touched by another thread.
struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;  ///< frame reassembly buffer
    std::size_t rlen = 0;            ///< valid bytes in rbuf
    std::vector<std::uint8_t> wbuf;  ///< pending response bytes
    std::size_t wpos = 0;            ///< flushed prefix of wbuf
    std::deque<InFlight> inflight;
    bool want_write = false;  ///< EPOLLOUT registered
    bool peer_closed = false; ///< read side done; flush + resolve, then close
};

struct Server::EventLoop {
    Server* srv = nullptr;
    int index = 0;
    int epfd = -1;
    int wake_fd = -1;
    std::thread thread;

    /// Cross-thread inbox (acceptor posts fds, completion hooks post
    /// seqs), drained by the loop thread after an eventfd wake.
    struct Completion {
        std::uint64_t seq = 0;
        std::int64_t done_us = 0;  ///< when the promise resolved
    };
    common::Mutex inbox_mutex;
    std::vector<int> pending_fds RAQ_GUARDED_BY(inbox_mutex);
    std::vector<Completion> completions RAQ_GUARDED_BY(inbox_mutex);

    /// Loop-thread-private state (thread-confined, deliberately
    /// unguarded: only the loop thread touches it after construction;
    /// stop() reads nothing here until after thread.join()).
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
    std::uint64_t next_conn_id = 1;  ///< 0 is the wake token
    std::uint64_t next_seq = 1;
    /// seq → owning conn id; survives the conn (orphaned entries park in
    /// `orphans` so their futures are still consumed after a disconnect
    /// — an accepted request is never blackholed, even client-side).
    std::unordered_map<std::uint64_t, std::uint64_t> seq_owner;
    std::unordered_map<std::uint64_t, InFlight> orphans;
    /// Admitted-but-unresolved requests in this loop (drain gate).
    std::int64_t inflight_count = 0;

    void run();
    void wake() const {
        const std::uint64_t one = 1;
        // The counter saturating (EAGAIN) still leaves the fd readable.
        [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
    }
    void drain_inbox() RAQ_EXCLUDES(inbox_mutex);
    void add_connection(int fd);
    void handle_readable(Connection& conn, std::uint64_t conn_id);
    /// Returns false on a protocol error (caller closes the connection).
    bool handle_frame(Connection& conn, std::uint64_t conn_id,
                      const std::uint8_t* payload, std::size_t size);
    void handle_completion(std::uint64_t seq, std::int64_t done_us);
    void respond_inflight(Connection& conn, InFlight& entry, std::int64_t done_us);
    /// Flush wbuf; manages EPOLLOUT interest. Returns false when the
    /// connection died mid-write (already destroyed).
    bool flush(Connection& conn, std::uint64_t conn_id);
    void update_interest(const Connection& conn, std::uint64_t conn_id) const;
    void destroy(std::uint64_t conn_id);
    [[nodiscard]] bool drained() const;
};

// ---------------------------------------------------------------------
// Server

Server::Server(serve::NpuServer& npu, const NetConfig& config)
    : npu_(npu), config_(config) {
    if (config.num_loops < 1) throw std::invalid_argument("net::Server: num_loops >= 1");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("net::Server: socket() failed");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw std::runtime_error("net::Server: bad host address " + config.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, config.backlog) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("net::Server: cannot bind/listen on " + config.host +
                                 ":" + std::to_string(config.port));
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    port_ = ntohs(addr.sin_port);
    set_nonblocking(listen_fd_);

    register_metrics();

    loops_.reserve(static_cast<std::size_t>(config.num_loops));
    for (int i = 0; i < config.num_loops; ++i) {
        auto loop = std::make_unique<EventLoop>();
        loop->srv = this;
        loop->index = i;
        loop->epfd = ::epoll_create1(0);
        loop->wake_fd = ::eventfd(0, EFD_NONBLOCK);
        if (loop->epfd < 0 || loop->wake_fd < 0)
            throw std::runtime_error("net::Server: epoll/eventfd setup failed");
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = 0;  // the wake token
        ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
        loops_.push_back(std::move(loop));
    }
    for (auto& loop : loops_) {
        EventLoop* raw = loop.get();
        raw->thread = std::thread([raw] { raw->run(); });
    }
    acceptor_ = std::thread([this] { acceptor_loop(); });

    if (obs::Telemetry* t = npu_.telemetry()) {
        obs::ReliabilityEvent re;
        re.t_us = obs::monotonic_us();
        re.kind = obs::EventKind::NetListen;
        re.value = static_cast<double>(port_);
        re.detail = config_.host + ":" + std::to_string(port_) + " loops=" +
                    std::to_string(config_.num_loops);
        t->timeline().record(std::move(re));
    }
}

Server::~Server() {
    stop();
    for (auto& loop : loops_) {
        if (loop->epfd >= 0) ::close(loop->epfd);
        if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    }
}

void Server::register_metrics() {
    obs::Telemetry* t = npu_.telemetry();
    if (!t) return;
    obs::MetricsRegistry& reg = t->metrics();
    m_connections_ = &reg.counter("raq_net_connections_total");
    m_active_ = &reg.gauge("raq_net_connections_active");
    m_requests_ = &reg.counter("raq_net_requests_total");
    m_responses_ = &reg.counter("raq_net_responses_total");
    m_shed_ = &reg.counter("raq_net_shed_total");
    m_protocol_errors_ = &reg.counter("raq_net_protocol_errors_total");
    m_bytes_read_ = &reg.counter("raq_net_bytes_read_total");
    m_bytes_written_ = &reg.counter("raq_net_bytes_written_total");
    m_socket_wait_us_ =
        &reg.histogram("raq_net_socket_wait_us", {}, obs::default_us_buckets());
}

void Server::acceptor_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        // 100 ms tick: bounded staleness on the stop flag without a
        // wake pipe for one rarely-stopped thread.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0) continue;
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) break;  // EAGAIN (or a transient error) — next tick
            set_nonblocking(fd);
            const int nodelay = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
            connections_.fetch_add(1, std::memory_order_relaxed);
            if (m_connections_) m_connections_->add(1);
            EventLoop& loop =
                *loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size()];
            {
                const common::MutexLock lock(loop.inbox_mutex);
                loop.pending_fds.push_back(fd);
            }
            loop.wake();
        }
    }
}

void Server::stop() {
    if (stopping_.exchange(true)) return;
    // Cascade: stop accepting → drain connections (in-flight futures
    // resolve, responses flush, new INFERs answered SHUTTING_DOWN) →
    // loops exit → join. The queue itself drains inside the NpuServer,
    // which must outlive this call.
    acceptor_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    draining_.store(true, std::memory_order_release);
    for (auto& loop : loops_) loop->wake();
    for (auto& loop : loops_) loop->thread.join();
    if (obs::Telemetry* t = npu_.telemetry()) {
        obs::ReliabilityEvent re;
        re.t_us = obs::monotonic_us();
        re.kind = obs::EventKind::NetDrain;
        re.value = static_cast<double>(responses_.load(std::memory_order_relaxed));
        re.detail = "drained; shed=" + std::to_string(shed_.load(std::memory_order_relaxed));
        t->timeline().record(std::move(re));
    }
}

NetStats Server::stats() const {
    NetStats s;
    s.connections = connections_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.responses = responses_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    s.shutdown_rejects = shutdown_rejects_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    return s;
}

// ---------------------------------------------------------------------
// EventLoop

void Server::EventLoop::run() {
    epoll_event events[64];
    std::int64_t drain_deadline_us = -1;
    for (;;) {
        const int n = ::epoll_wait(epfd, events, 64, 100);
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[i].data.u64;
            if (id == 0) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const ssize_t r =
                    ::read(wake_fd, &drained, sizeof(drained));
                continue;  // inbox drained below, once per wait round
            }
            const auto it = conns.find(id);
            if (it == conns.end()) continue;  // destroyed earlier this round
            Connection& conn = *it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                destroy(id);
                continue;
            }
            if (events[i].events & EPOLLOUT) {
                if (!flush(conn, id)) continue;
            }
            if (events[i].events & EPOLLIN) handle_readable(conn, id);
        }
        drain_inbox();
        if (srv->draining_.load(std::memory_order_acquire)) {
            if (drain_deadline_us < 0)
                drain_deadline_us =
                    obs::monotonic_us() + 1000ll * srv->config_.drain_deadline_ms;
            if (drained() || obs::monotonic_us() > drain_deadline_us) break;
        }
    }
    // Close every connection socket; epfd/wake_fd stay open until the
    // Server destructor (a straggling completion hook may still write
    // the eventfd after a deadline-forced exit).
    for (auto& [id, conn] : conns) {
        ::close(conn->fd);
        if (srv->m_active_) srv->m_active_->add(-1.0);
    }
    conns.clear();
}

bool Server::EventLoop::drained() const {
    if (inflight_count != 0) return false;
    for (const auto& [id, conn] : conns)
        if (conn->wpos < conn->wbuf.size()) return false;
    return true;
}

void Server::EventLoop::drain_inbox() {
    std::vector<int> fds;
    std::vector<Completion> done;
    {
        const common::MutexLock lock(inbox_mutex);
        fds.swap(pending_fds);
        done.swap(completions);
    }
    for (const int fd : fds) add_connection(fd);
    for (const Completion& c : done) handle_completion(c.seq, c.done_us);
}

void Server::EventLoop::add_connection(int fd) {
    const std::uint64_t id = next_conn_id++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        return;
    }
    conns.emplace(id, std::move(conn));
    if (srv->m_active_) srv->m_active_->add(1.0);
}

void Server::EventLoop::handle_readable(Connection& conn, std::uint64_t conn_id) {
    if (conn.peer_closed) return;
    for (;;) {
        if (conn.rbuf.size() < conn.rlen + kReadChunk)
            conn.rbuf.resize(conn.rlen + kReadChunk);
        const ssize_t n =
            ::recv(conn.fd, conn.rbuf.data() + conn.rlen, kReadChunk, 0);
        if (n > 0) {
            conn.rlen += static_cast<std::size_t>(n);
            srv->bytes_read_.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
            if (srv->m_bytes_read_) srv->m_bytes_read_->add(static_cast<double>(n));
            continue;
        }
        if (n == 0) {
            // Peer finished sending. Outstanding responses still flush;
            // the connection closes once everything in flight resolves.
            conn.peer_closed = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        destroy(conn_id);
        return;
    }
    // Parse complete frames in place.
    std::size_t off = 0;
    bool ok = true;
    while (conn.rlen - off >= 4) {
        std::uint32_t len = 0;
        std::memcpy(&len, conn.rbuf.data() + off, 4);
        if (len == 0 || len > srv->config_.max_frame_bytes) {
            ok = false;
            break;
        }
        if (conn.rlen - off - 4 < len) break;  // incomplete frame
        if (!handle_frame(conn, conn_id, conn.rbuf.data() + off + 4, len)) {
            ok = false;
            break;
        }
        off += 4 + len;
    }
    if (!ok) {
        srv->protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        if (srv->m_protocol_errors_) srv->m_protocol_errors_->add(1);
        destroy(conn_id);
        return;
    }
    if (off > 0) {
        std::memmove(conn.rbuf.data(), conn.rbuf.data() + off, conn.rlen - off);
        conn.rlen -= off;
    }
    if (!flush(conn, conn_id)) return;
    if (conn.peer_closed && conn.inflight.empty() && conn.wpos >= conn.wbuf.size())
        destroy(conn_id);
}

bool Server::EventLoop::handle_frame(Connection& conn, std::uint64_t conn_id,
                                     const std::uint8_t* payload, std::size_t size) {
    Reader r(payload, size);
    std::uint8_t op_byte = 0;
    std::uint64_t tag = 0;
    if (!r.read(op_byte) || !r.read(tag)) return false;
    srv->requests_.fetch_add(1, std::memory_order_relaxed);
    if (srv->m_requests_) srv->m_requests_->add(1);

    if (op_byte == static_cast<std::uint8_t>(Op::Metrics)) {
        encode_blob_response(conn.wbuf, Status::Ok, tag, srv->npu_.export_metrics());
        srv->responses_.fetch_add(1, std::memory_order_relaxed);
        if (srv->m_responses_) srv->m_responses_->add(1);
        return true;
    }
    // Class-tagged INFER frames carry one class byte after the tag;
    // legacy Infer frames default to the interactive lane.
    serve::RequestClass klass = serve::RequestClass::Interactive;
    if (op_byte == static_cast<std::uint8_t>(Op::InferClass)) {
        std::uint8_t class_byte = 0;
        if (!r.read(class_byte) ||
            class_byte >= static_cast<std::uint8_t>(serve::kNumRequestClasses))
            return false;
        klass = static_cast<serve::RequestClass>(class_byte);
    } else if (op_byte != static_cast<std::uint8_t>(Op::Infer)) {
        return false;
    }

    InferHeader hdr;
    if (!r.read(hdr.model_id) || !r.read(hdr.c) || !r.read(hdr.h) || !r.read(hdr.w) ||
        !r.read(hdr.scale) || !r.read(hdr.zero_point))
        return false;
    const std::size_t pixels = static_cast<std::size_t>(hdr.c) * hdr.h * hdr.w;
    const std::uint8_t* bytes = nullptr;
    if (pixels == 0 || r.remaining() != pixels || !r.bytes(pixels, bytes)) return false;
    if (hdr.model_id != srv->config_.model_id) {
        encode_blob_response(conn.wbuf, Status::BadRequest, tag,
                             "unknown model id " + std::to_string(hdr.model_id));
        srv->responses_.fetch_add(1, std::memory_order_relaxed);
        if (srv->m_responses_) srv->m_responses_->add(1);
        return true;
    }

    if (srv->draining_.load(std::memory_order_acquire)) {
        encode_blob_response(conn.wbuf, Status::ShuttingDown, tag, "draining");
        srv->shutdown_rejects_.fetch_add(1, std::memory_order_relaxed);
        srv->responses_.fetch_add(1, std::memory_order_relaxed);
        if (srv->m_responses_) srv->m_responses_->add(1);
        return true;
    }

    // Zero-copy hand-off: dequantize the wire payload straight into the
    // tensor the batcher consumes. No intermediate image buffer exists
    // between the socket read and the admission queue.
    tensor::Tensor image(tensor::Shape{1, hdr.c, hdr.h, hdr.w});
    float* dst = image.data();
    for (std::size_t i = 0; i < pixels; ++i)
        dst[i] = dequant(bytes[i], hdr.scale, hdr.zero_point);

    const std::uint64_t seq = next_seq++;
    serve::NpuServer::TrySubmit admitted = srv->npu_.try_submit(
        std::move(image),
        [this, seq] {
            const std::int64_t now = obs::monotonic_us();
            {
                const common::MutexLock lock(inbox_mutex);
                completions.push_back({seq, now});
            }
            wake();
        },
        klass);
    switch (admitted.status) {
        case serve::NpuServer::TrySubmit::Status::Accepted: {
            // The hook cannot race this bookkeeping: completions are
            // only *processed* by this thread, later in drain_inbox().
            InFlight entry;
            entry.tag = tag;
            entry.seq = seq;
            entry.future = std::move(admitted.future);
            conn.inflight.push_back(std::move(entry));
            seq_owner.emplace(seq, conn_id);
            ++inflight_count;
            return true;
        }
        case serve::NpuServer::TrySubmit::Status::Saturated: {
            encode_blob_response(conn.wbuf, Status::Busy, tag, "queue saturated");
            srv->shed_.fetch_add(1, std::memory_order_relaxed);
            srv->responses_.fetch_add(1, std::memory_order_relaxed);
            if (srv->m_shed_) srv->m_shed_->add(1);
            if (srv->m_responses_) srv->m_responses_->add(1);
            if (obs::Telemetry* t = srv->npu_.telemetry()) {
                // Rate-limit the timeline event to ~1/s: overload sheds
                // thousands of requests; the timeline wants the episode.
                const std::int64_t now = obs::monotonic_us();
                std::int64_t last =
                    srv->last_overload_event_us_.load(std::memory_order_relaxed);
                if (now - last > 1'000'000 &&
                    srv->last_overload_event_us_.compare_exchange_strong(
                        last, now, std::memory_order_relaxed)) {
                    obs::ReliabilityEvent re;
                    re.t_us = now;
                    re.kind = obs::EventKind::NetOverload;
                    re.value = static_cast<double>(
                        srv->shed_.load(std::memory_order_relaxed));
                    re.detail = "admission queue saturated; shedding BUSY";
                    t->timeline().record(std::move(re));
                }
            }
            return true;
        }
        case serve::NpuServer::TrySubmit::Status::Closed: {
            encode_blob_response(conn.wbuf, Status::ShuttingDown, tag, "server closed");
            srv->shutdown_rejects_.fetch_add(1, std::memory_order_relaxed);
            srv->responses_.fetch_add(1, std::memory_order_relaxed);
            if (srv->m_responses_) srv->m_responses_->add(1);
            return true;
        }
    }
    return false;
}

void Server::EventLoop::handle_completion(std::uint64_t seq, std::int64_t done_us) {
    const auto owner = seq_owner.find(seq);
    if (owner == seq_owner.end()) return;  // already consumed
    const std::uint64_t conn_id = owner->second;
    seq_owner.erase(owner);

    const auto orphan = orphans.find(seq);
    if (orphan != orphans.end()) {
        // Connection died before its request resolved: consume the
        // future (the serving side completed it — nothing leaks), drop
        // the response.
        try {
            orphan->second.future.get();
        } catch (...) {
        }
        orphans.erase(orphan);
        --inflight_count;
        return;
    }
    const auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    Connection& conn = *it->second;
    for (auto entry = conn.inflight.begin(); entry != conn.inflight.end(); ++entry) {
        if (entry->seq != seq) continue;
        respond_inflight(conn, *entry, done_us);
        conn.inflight.erase(entry);
        --inflight_count;
        if (!flush(conn, conn_id)) return;
        if (conn.peer_closed && conn.inflight.empty() && conn.wpos >= conn.wbuf.size())
            destroy(conn_id);
        return;
    }
}

void Server::EventLoop::respond_inflight(Connection& conn, InFlight& entry,
                                         std::int64_t done_us) {
    try {
        serve::InferenceResult result = entry.future.get();
        InferReply reply;
        reply.predicted_class = result.predicted_class;
        reply.device_id = static_cast<std::uint32_t>(result.device_id);
        reply.generation = result.generation;
        reply.partition = result.partition;
        reply.latency_us = result.latency_us;
        reply.logits = std::move(result.logits);
        encode_infer_response(conn.wbuf, entry.tag, reply);
    } catch (const std::exception& e) {
        encode_blob_response(conn.wbuf, Status::Error, entry.tag, e.what());
    } catch (...) {
        encode_blob_response(conn.wbuf, Status::Error, entry.tag, "serving failed");
    }
    srv->responses_.fetch_add(1, std::memory_order_relaxed);
    if (srv->m_responses_) srv->m_responses_->add(1);
    // Resolution → serialization delay: how long a finished result sat
    // waiting for the event loop (the front-end's own queueing cost).
    if (srv->m_socket_wait_us_)
        srv->m_socket_wait_us_->observe(
            static_cast<double>(obs::monotonic_us() - done_us));
}

bool Server::EventLoop::flush(Connection& conn, std::uint64_t conn_id) {
    while (conn.wpos < conn.wbuf.size()) {
        const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wpos,
                                 conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.wpos += static_cast<std::size_t>(n);
            srv->bytes_written_.fetch_add(static_cast<std::uint64_t>(n),
                                          std::memory_order_relaxed);
            if (srv->m_bytes_written_) srv->m_bytes_written_->add(static_cast<double>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!conn.want_write) {
                conn.want_write = true;
                update_interest(conn, conn_id);
            }
            return true;
        }
        destroy(conn_id);
        return false;
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    if (conn.want_write) {
        conn.want_write = false;
        update_interest(conn, conn_id);
    }
    return true;
}

void Server::EventLoop::update_interest(const Connection& conn,
                                        std::uint64_t conn_id) const {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    ev.data.u64 = conn_id;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::EventLoop::destroy(std::uint64_t conn_id) {
    const auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    Connection& conn = *it->second;
    // Park still-pending requests as orphans: their futures resolve
    // later and must be consumed (and the drain gate decremented) even
    // though there is no socket left to answer on.
    for (InFlight& entry : conn.inflight) orphans.emplace(entry.seq, std::move(entry));
    conn.inflight.clear();
    ::close(conn.fd);
    conns.erase(it);
    if (srv->m_active_) srv->m_active_->add(-1.0);
}

}  // namespace raq::net
