#include "net/load_gen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "obs/clock.hpp"

namespace raq::net {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Blocking client connection with framed send/recv helpers.
class ClientConn {
public:
    bool connect_to(const std::string& host, std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
            ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            close();
            return false;
        }
        const int nodelay = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
        return true;
    }

    ~ClientConn() { close(); }
    void close() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }
    [[nodiscard]] bool ok() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }

    bool send_all(const std::uint8_t* data, std::size_t size) {
        std::size_t off = 0;
        while (off < size) {
            const ssize_t n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR) continue;
                return false;
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool recv_all(std::uint8_t* data, std::size_t size) {
        std::size_t off = 0;
        while (off < size) {
            const ssize_t n = ::recv(fd_, data + off, size - off, 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR) continue;
                return false;  // EOF, timeout or error
            }
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /// Read one length-prefixed frame into `payload`.
    bool recv_frame(std::vector<std::uint8_t>& payload) {
        std::uint8_t len_bytes[4];
        if (!recv_all(len_bytes, 4)) return false;
        std::uint32_t len = 0;
        std::memcpy(&len, len_bytes, 4);
        if (len == 0 || len > kMaxFrameBytes) return false;
        payload.resize(len);
        return recv_all(payload.data(), len);
    }

    /// Wait for readable data: 1 = ready, 0 = timeout, -1 = error. Used
    /// instead of SO_RCVTIMEO so a timeout can never strike mid-frame
    /// and desynchronize the stream.
    int wait_readable(int timeout_ms) const {
        pollfd pfd{fd_, POLLIN, 0};
        return ::poll(&pfd, 1, timeout_ms);
    }

private:
    int fd_ = -1;
};

/// Shared tally all connection threads fold into under one mutex (the
/// per-request cost is one lock at response time — negligible next to a
/// socket round trip).
struct Tally {
    common::Mutex mutex;
    LoadReport report RAQ_GUARDED_BY(mutex);
    common::ReservoirSampler latency_ms RAQ_GUARDED_BY(mutex);
    /// Per-class latency reservoirs: [0] interactive, [1] batch.
    common::ReservoirSampler class_latency_ms[2] RAQ_GUARDED_BY(mutex);

    explicit Tally(const LoadGenConfig& cfg)
        : latency_ms(cfg.latency_reservoir, common::stream_seed(cfg.seed, 0x7A11ULL)),
          class_latency_ms{
              common::ReservoirSampler(cfg.latency_reservoir,
                                       common::stream_seed(cfg.seed, 0x7A11ULL, 0)),
              common::ReservoirSampler(cfg.latency_reservoir,
                                       common::stream_seed(cfg.seed, 0x7A11ULL, 1))} {}
};

/// Per-connection request-class draw. Its own seed stream keeps the
/// class mix independent of the arrival process, so sweeping
/// --interactive-frac replays the same arrival times.
class ClassDraw {
public:
    ClassDraw(const LoadGenConfig& cfg, int conn_index)
        : frac_(cfg.interactive_frac),
          rng_(common::stream_seed(cfg.seed, static_cast<std::uint64_t>(conn_index),
                                   0xC1A55ULL)) {}

    /// 0 = interactive, 1 = batch.
    std::uint8_t next() { return rng_.next_double() < frac_ ? 0 : 1; }

private:
    const double frac_;
    common::Rng rng_;
};

/// Encode one request with the class-appropriate frame: interactive
/// traffic uses the legacy Op::Infer frame (the server must default it
/// to the interactive lane), batch traffic the versioned Op::InferClass.
void encode_classed_request(std::vector<std::uint8_t>& out, std::uint64_t tag,
                            std::uint8_t klass, const EncodedSample& sample) {
    if (klass == 0)
        encode_infer_request(out, tag, sample.header, sample.payload);
    else
        encode_infer_class_request(out, tag, klass, sample.header, sample.payload);
}

/// Inter-arrival schedule for the open-loop models. Deterministic per
/// connection (seeded from config.seed + connection index).
class ArrivalProcess {
public:
    ArrivalProcess(const LoadGenConfig& cfg, int conn_index)
        : cfg_(cfg),
          rate_(std::max(1e-9, cfg.rate_rps / std::max(1, cfg.connections))),
          rng_(common::stream_seed(cfg.seed, static_cast<std::uint64_t>(conn_index))) {}

    /// Seconds from run start at which the next request fires. Advances
    /// internal time; call once per request.
    double next_arrival_s() {
        switch (cfg_.model) {
            case TrafficModel::Constant:
                t_ += 1.0 / rate_;
                return t_;
            case TrafficModel::Poisson:
                t_ += exp_sample(rate_);
                return t_;
            case TrafficModel::Diurnal: {
                // Nonhomogeneous Poisson by thinning against the peak.
                for (;;) {
                    t_ += exp_sample(rate_);
                    const double phase = kTwoPi * t_ / cfg_.diurnal_period_s;
                    const double level =
                        cfg_.diurnal_trough +
                        (1.0 - cfg_.diurnal_trough) * 0.5 * (1.0 - std::cos(phase));
                    if (rng_.next_double() < level) return t_;
                }
            }
            case TrafficModel::Bursty: {
                if (burst_left_ == 0) {
                    // Pareto(α) burst size with mean burst_mean:
                    // xm = mean(α−1)/α, X = xm / U^(1/α).
                    const double alpha = std::max(1.01, cfg_.pareto_alpha);
                    const double xm = cfg_.burst_mean * (alpha - 1.0) / alpha;
                    double u = rng_.next_double();
                    while (u <= 1e-12) u = rng_.next_double();
                    const double x = xm / std::pow(u, 1.0 / alpha);
                    burst_left_ = std::max<std::uint64_t>(
                        1, static_cast<std::uint64_t>(std::llround(x)));
                    // Gap sized so the long-run rate still averages rate_:
                    // a burst of K requests "costs" K/rate seconds of trace.
                    t_ += exp_sample(rate_ / static_cast<double>(burst_left_));
                }
                --burst_left_;
                return t_;  // requests within a burst are back-to-back
            }
            case TrafficModel::ClosedLoop:
                return t_;  // unused: the closed loop self-clocks
        }
        return t_;
    }

private:
    double exp_sample(double rate) {
        double u = rng_.next_double();
        while (u <= 1e-300) u = rng_.next_double();
        return -std::log(u) / rate;
    }

    const LoadGenConfig& cfg_;
    const double rate_;
    common::Rng rng_;
    double t_ = 0.0;
    std::uint64_t burst_left_ = 0;
};

void tally_response(Tally& tally, const LoadGenConfig& cfg, const Response& resp,
                    std::size_t sample_index, std::uint8_t klass, double rtt_ms) {
    const common::MutexLock lock(tally.mutex);
    switch (resp.status) {
        case Status::Ok: {
            ++tally.report.ok;
            if (klass == 0)
                ++tally.report.ok_interactive;
            else
                ++tally.report.ok_batch;
            tally.latency_ms.record(rtt_ms);
            tally.class_latency_ms[klass].record(rtt_ms);
            if (cfg.capture) {
                CapturedResult cap;
                cap.sample_index = sample_index;
                cap.predicted_class = resp.infer.predicted_class;
                cap.logits = resp.infer.logits;
                tally.report.captured.push_back(std::move(cap));
            }
            break;
        }
        case Status::Busy: ++tally.report.busy; break;
        case Status::ShuttingDown: ++tally.report.shutdown; break;
        case Status::BadRequest: ++tally.report.bad; break;
        case Status::Error: ++tally.report.errors; break;
    }
}

void count_error(Tally& tally, std::uint64_t n = 1) {
    const common::MutexLock lock(tally.mutex);
    tally.report.errors += n;
}

/// Closed loop: one outstanding request per connection; self-clocked.
void closed_loop_conn(const LoadGenConfig& cfg, const std::vector<EncodedSample>& samples,
                      int conn_index, std::uint64_t quota, Tally& tally) {
    ClientConn conn;
    if (!conn.connect_to(cfg.host, cfg.port)) {
        count_error(tally, quota);
        const common::MutexLock lock(tally.mutex);
        tally.report.sent += quota;  // offered but never delivered
        return;
    }
    std::vector<std::uint8_t> out;
    std::vector<std::uint8_t> in;
    ClassDraw classes(cfg, conn_index);
    for (std::uint64_t i = 0; i < quota; ++i) {
        const std::size_t sample_index =
            (static_cast<std::size_t>(conn_index) + i * cfg.connections) % samples.size();
        const EncodedSample& sample = samples[sample_index];
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(conn_index) << 32) | i;
        const std::uint8_t klass = classes.next();
        out.clear();
        encode_classed_request(out, tag, klass, sample);
        {
            const common::MutexLock lock(tally.mutex);
            ++tally.report.sent;
        }
        const std::int64_t t0 = obs::monotonic_us();
        Response resp;
        if (!conn.send_all(out.data(), out.size()) || !conn.recv_frame(in) ||
            !decode_response(in.data(), in.size(), Op::Infer, resp)) {
            count_error(tally);
            return;  // connection is broken; stop this worker
        }
        const double rtt_ms = static_cast<double>(obs::monotonic_us() - t0) * 1e-3;
        tally_response(tally, cfg, resp, sample_index, klass, rtt_ms);
    }
}

/// Open loop: a sender thread paces the arrival process regardless of
/// service speed; a reader thread matches responses by tag.
void open_loop_conn(const LoadGenConfig& cfg, const std::vector<EncodedSample>& samples,
                    int conn_index, std::uint64_t quota, Tally& tally) {
    ClientConn conn;
    if (!conn.connect_to(cfg.host, cfg.port)) {
        count_error(tally, quota);
        const common::MutexLock lock(tally.mutex);
        tally.report.sent += quota;
        return;
    }
    struct Outstanding {
        std::int64_t sent_us = 0;
        std::size_t sample_index = 0;
        std::uint8_t klass = 0;
    };
    std::mutex pending_mutex;
    std::unordered_map<std::uint64_t, Outstanding> pending;
    std::atomic<bool> sender_done{false};
    std::atomic<bool> conn_broken{false};

    std::thread reader([&] {
        std::vector<std::uint8_t> in;
        for (;;) {
            if (conn_broken.load(std::memory_order_acquire)) return;
            {
                const std::lock_guard<std::mutex> lock(pending_mutex);
                if (sender_done.load(std::memory_order_acquire) && pending.empty())
                    return;
            }
            const int ready = conn.wait_readable(200);
            if (ready == 0) continue;  // timeout tick; re-check exit conditions
            if (ready < 0) {
                conn_broken.store(true, std::memory_order_release);
                return;
            }
            Response resp;
            if (!conn.recv_frame(in)) {
                conn_broken.store(true, std::memory_order_release);
                return;
            }
            if (!decode_response(in.data(), in.size(), Op::Infer, resp)) {
                conn_broken.store(true, std::memory_order_release);
                return;
            }
            Outstanding meta;
            bool known = false;
            {
                const std::lock_guard<std::mutex> lock(pending_mutex);
                const auto it = pending.find(resp.tag);
                if (it != pending.end()) {
                    meta = it->second;
                    pending.erase(it);
                    known = true;
                }
            }
            if (!known) continue;  // duplicate/unknown tag; ignore
            const double rtt_ms =
                static_cast<double>(obs::monotonic_us() - meta.sent_us) * 1e-3;
            tally_response(tally, cfg, resp, meta.sample_index, meta.klass, rtt_ms);
        }
    });

    ArrivalProcess arrivals(cfg, conn_index);
    ClassDraw classes(cfg, conn_index);
    const std::int64_t start_us = obs::monotonic_us();
    const std::int64_t end_us =
        cfg.duration_s > 0.0
            ? start_us + static_cast<std::int64_t>(cfg.duration_s * 1e6)
            : std::numeric_limits<std::int64_t>::max();
    std::vector<std::uint8_t> out;
    for (std::uint64_t i = 0; quota == 0 || i < quota; ++i) {
        const std::int64_t due_us =
            start_us + static_cast<std::int64_t>(arrivals.next_arrival_s() * 1e6);
        if (due_us > end_us) break;
        const std::int64_t now = obs::monotonic_us();
        if (due_us > now)
            std::this_thread::sleep_for(std::chrono::microseconds(due_us - now));
        if (conn_broken.load(std::memory_order_acquire)) break;
        const std::size_t sample_index =
            (static_cast<std::size_t>(conn_index) + i * cfg.connections) % samples.size();
        const EncodedSample& sample = samples[sample_index];
        const std::uint64_t tag = (static_cast<std::uint64_t>(conn_index) << 32) | i;
        const std::uint8_t klass = classes.next();
        out.clear();
        encode_classed_request(out, tag, klass, sample);
        {
            const std::lock_guard<std::mutex> lock(pending_mutex);
            pending.emplace(tag, Outstanding{obs::monotonic_us(), sample_index, klass});
        }
        {
            const common::MutexLock lock(tally.mutex);
            ++tally.report.sent;
        }
        if (!conn.send_all(out.data(), out.size())) {
            conn_broken.store(true, std::memory_order_release);
            // The request never reached the server; answer it locally.
            {
                const std::lock_guard<std::mutex> lock(pending_mutex);
                pending.erase(tag);
            }
            count_error(tally);
            break;
        }
    }
    sender_done.store(true, std::memory_order_release);
    // Give stragglers a bounded window, then count what never came back
    // as errors so the report still balances.
    const std::int64_t drain_deadline =
        obs::monotonic_us() + 1000ll * cfg.drain_timeout_ms;
    while (obs::monotonic_us() < drain_deadline) {
        {
            const std::lock_guard<std::mutex> lock(pending_mutex);
            if (pending.empty()) break;
        }
        if (conn_broken.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    conn_broken.store(true, std::memory_order_release);
    reader.join();
    std::size_t unanswered = 0;
    {
        const std::lock_guard<std::mutex> lock(pending_mutex);
        unanswered = pending.size();
        pending.clear();
    }
    if (unanswered > 0) count_error(tally, unanswered);
}

}  // namespace

const char* traffic_model_name(TrafficModel model) noexcept {
    switch (model) {
        case TrafficModel::ClosedLoop: return "closed-loop";
        case TrafficModel::Constant: return "constant";
        case TrafficModel::Poisson: return "poisson";
        case TrafficModel::Diurnal: return "diurnal";
        case TrafficModel::Bursty: return "bursty";
    }
    return "?";
}

EncodedSample encode_sample(tensor::TensorView sample, std::uint32_t model_id) {
    EncodedSample out;
    out.header.model_id = model_id;
    out.header.c = static_cast<std::uint16_t>(sample.shape.c);
    out.header.h = static_cast<std::uint16_t>(sample.shape.h);
    out.header.w = static_cast<std::uint16_t>(sample.shape.w);
    const std::size_t pixels = sample.size();
    float lo = sample.data[0], hi = sample.data[0];
    for (std::size_t i = 1; i < pixels; ++i) {
        lo = std::min(lo, sample.data[i]);
        hi = std::max(hi, sample.data[i]);
    }
    const float scale = (hi - lo) > 0.0f ? (hi - lo) / 255.0f : 1.0f;
    const float zero_point = -lo / scale;
    out.header.scale = scale;
    out.header.zero_point = zero_point;
    out.payload.resize(pixels);
    out.reference = tensor::Tensor(tensor::Shape{1, sample.shape.c, sample.shape.h,
                                                 sample.shape.w});
    float* ref = out.reference.data();
    for (std::size_t i = 0; i < pixels; ++i) {
        const float q = std::round(sample.data[i] / scale + zero_point);
        const std::uint8_t byte =
            static_cast<std::uint8_t>(std::clamp(q, 0.0f, 255.0f));
        out.payload[i] = byte;
        // The reference is what the SERVER will reconstruct — identical
        // arithmetic through the shared dequant().
        ref[i] = dequant(byte, scale, zero_point);
    }
    return out;
}

LoadReport run_load(const LoadGenConfig& config, const std::vector<EncodedSample>& samples) {
    if (samples.empty() || config.connections < 1) return {};
    Tally tally(config);
    const int conns = config.connections;
    // Split a total-request quota across connections (first conns get
    // the remainder). 0 stays 0 = unbounded (duration-governed).
    std::vector<std::uint64_t> quota(static_cast<std::size_t>(conns), 0);
    if (config.total_requests > 0) {
        for (int i = 0; i < conns; ++i) {
            quota[static_cast<std::size_t>(i)] =
                config.total_requests / conns +
                (static_cast<std::uint64_t>(i) < config.total_requests % conns ? 1 : 0);
        }
    }
    const std::int64_t t0 = obs::monotonic_us();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int i = 0; i < conns; ++i) {
        const std::uint64_t q = quota[static_cast<std::size_t>(i)];
        threads.emplace_back([&, i, q] {
            if (config.model == TrafficModel::ClosedLoop)
                closed_loop_conn(config, samples, i, q, tally);
            else
                open_loop_conn(config, samples, i, q, tally);
        });
    }
    for (std::thread& t : threads) t.join();
    LoadReport report;
    {
        const common::MutexLock lock(tally.mutex);
        report = std::move(tally.report);
        report.wall_s = static_cast<double>(obs::monotonic_us() - t0) * 1e-6;
        if (tally.latency_ms.count() > 0) {
            const std::vector<double> qs = tally.latency_ms.quantiles({0.50, 0.99});
            report.p50_ms = qs[0];
            report.p99_ms = qs[1];
            report.mean_ms = tally.latency_ms.mean();
            report.max_ms = tally.latency_ms.max();
        }
        if (tally.class_latency_ms[0].count() > 0) {
            const std::vector<double> qs =
                tally.class_latency_ms[0].quantiles({0.50, 0.99});
            report.interactive_p50_ms = qs[0];
            report.interactive_p99_ms = qs[1];
        }
        if (tally.class_latency_ms[1].count() > 0) {
            const std::vector<double> qs =
                tally.class_latency_ms[1].quantiles({0.50, 0.99});
            report.batch_p50_ms = qs[0];
            report.batch_p99_ms = qs[1];
        }
    }
    return report;
}

std::string fetch_metrics(const std::string& host, std::uint16_t port) {
    ClientConn conn;
    if (!conn.connect_to(host, port)) return {};
    std::vector<std::uint8_t> out;
    encode_metrics_request(out, /*tag=*/0);
    if (!conn.send_all(out.data(), out.size())) return {};
    std::vector<std::uint8_t> in;
    Response resp;
    if (!conn.recv_frame(in) || !decode_response(in.data(), in.size(), Op::Metrics, resp) ||
        resp.status != Status::Ok)
        return {};
    return resp.blob;
}

std::string LoadReport::to_string() const {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "load: %llu sent | %llu ok %llu busy %llu shutdown %llu bad %llu err | "
                  "%.2fs wall, %.0f qps | p50 %.2fms p99 %.2fms mean %.2fms max %.2fms%s",
                  static_cast<unsigned long long>(sent), static_cast<unsigned long long>(ok),
                  static_cast<unsigned long long>(busy),
                  static_cast<unsigned long long>(shutdown),
                  static_cast<unsigned long long>(bad),
                  static_cast<unsigned long long>(errors), wall_s, qps(), p50_ms, p99_ms,
                  mean_ms, max_ms, lossless() ? "" : "  [LOSSY!]");
    std::string line(buf);
    if (ok_batch > 0) {
        // Only worth a second line when the run actually mixed classes.
        std::snprintf(buf, sizeof(buf),
                      "\n      interactive: %llu ok p50 %.2fms p99 %.2fms | "
                      "batch: %llu ok p50 %.2fms p99 %.2fms",
                      static_cast<unsigned long long>(ok_interactive),
                      interactive_p50_ms, interactive_p99_ms,
                      static_cast<unsigned long long>(ok_batch), batch_p50_ms,
                      batch_p99_ms);
        line += buf;
    }
    return line;
}

}  // namespace raq::net
